"""Conservative (null-message / lookahead-window) parallel DES driver.

The machine is cut into axis-aligned slabs (:func:`repro.machine.builder.
partition_nodes`); each partition runs the ordinary single-threaded
:class:`~repro.sim.core.Simulator` over its nodes, and cross-partition
wire chunks travel as timestamped channel messages between partitions.

Synchronization is the classic Chandy–Misra–Bryant window scheme run as
synchronous global rounds:

1. every partition publishes ``(next, exports)`` — the timestamp of its
   earliest pending event and the chunks it exported since the last
   round;
2. every partition reads all peers' publications, imports the chunks
   destined to it (at their original timestamps, via
   :meth:`Simulator.schedule_at`), and computes the *import-adjusted*
   earliest pending time ``N'_k`` of every partition — identical inputs,
   so every partition derives identical values;
3. the lower bound on any partition's next execution is the fixed point
   ``E_j = min_k (N'_k + D[k][j])`` where ``D`` is the all-pairs
   shortest-path closure of the lookahead matrix ``L`` — a chunk leaving
   partition ``k`` cannot arrive at ``i`` earlier than its send time
   plus ``L[k][i]``;
4. partition ``i`` may then safely simulate every event strictly below
   the horizon ``H_i = min_{k != i} (E_k + L[k][i])`` — anything a peer
   has not yet sent will arrive at or beyond it.

The lookahead is physical, not tuned: ``L[i][j]`` is
``LinkModel.chunk_transit_time(1, hops)`` — one packet's serialization
plus per-hop fall-through over the *minimum* dimension-ordered route
crossing the cut (:func:`repro.net.routing.slab_cut_hops`).  The plane
model never emits a chunk that beats it (at least one packet serializes
before the first hop), and :class:`PartitionRunner` re-checks every
import at runtime, raising :class:`CausalityError` rather than
reordering history.

Progress is guaranteed: the partition holding the globally earliest
event has ``H >= N'_min + min(L) > N'_min``, so every round executes at
least that event; termination is when every ``N'`` is infinite (no
pending events anywhere and no chunks in flight — in-flight chunks are
folded into ``N'`` the round they are published).

**Exactness contract.**  Partitioned runs reproduce the serial run's
*results* byte-identically: every delivered-message record and every
metric derived from them (see :func:`repro.sim.parallel.scenario.
result_document`) is a deterministic function of the arrival set,
folded in the canonical order ``(arrival, src, msg_id, chunk_seq)``.
The documented relaxation is that *heap-level* bookkeeping is not
reproduced: event interleaving within a timestamp, heap sequence
numbers, and ``events_scheduled`` all legitimately differ between
partitionings (each partition owns a private heap), so they live in the
informational ``info`` half of the run document, never in the gated
``result`` half.  tests/test_parallel_sim.py and the Hypothesis suite
assert the identity; docs/architecture.md spells out the contract.

Two transports drive the same round protocol:

* ``memory`` — all partitions step round-robin in one process (used by
  the property suite and the differential harness's fast paths);
* ``pool``   — one long-lived task per partition on the self-healing
  spawn pool (:mod:`repro.benchrunner.pool`), exchanging round files in
  a shared directory via the repo's atomic-rename discipline.  A
  partition SIGKILLed mid-run is respawned by the pool and
  deterministically re-simulates from t=0, republishing byte-identical
  round files until it catches up; peers simply keep polling.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from ...hw.config import DEFAULT_CONFIG, SeaStarConfig
from ...machine.builder import PartitionPlan, partition_nodes
from ...net.link import LinkModel
from ...net.routing import slab_cut_hops
from ...telemetry.recorder import default_flight_dir, dump_flight
from ...telemetry.rounds import RoundRecorder, doc_tail_events, straggler_report
from ..core import Simulator
from .scenario import Chunk, MsgKey, PlanePartition, PlaneScenario, result_document

__all__ = [
    "CausalityError",
    "PartitionRunner",
    "lookahead_matrix",
    "lookahead_closure",
    "run_scenario",
    "INF",
]

INF = float("inf")

#: exchange-file poll deadline: how long a partition waits for a peer's
#: round file before declaring the run wedged.  Generous because a
#: SIGKILLed peer must be respawned by the pool (backoff included) and
#: re-simulate from t=0 before its file appears.
DEFAULT_EXCHANGE_DEADLINE_S = 300.0


class CausalityError(RuntimeError):
    """An imported chunk carried a timestamp below the safe horizon."""


# -- lookahead geometry ------------------------------------------------------


def lookahead_matrix(
    scenario: PlaneScenario,
    plan: PartitionPlan,
    config: SeaStarConfig = DEFAULT_CONFIG,
) -> List[List[int]]:
    """Pairwise conservative lookahead (ps) between slab partitions.

    ``L[i][j]`` bounds how soon a chunk sent by partition ``i`` can
    arrive at partition ``j``: one packet's serialization plus the
    minimum cut's per-hop latency, i.e. ``LinkModel.chunk_transit_time(1,
    min_hops)``.  Strictly positive for ``i != j`` (disjoint slabs are
    at least one hop apart), which is what guarantees progress.
    """
    topo = scenario.topology()
    hops = slab_cut_hops(topo, plan.axis, list(plan.ranges))
    link = LinkModel(config)
    n = plan.nparts
    out: List[List[int]] = []
    for i in range(n):
        row = []
        for j in range(n):
            row.append(0 if i == j else link.chunk_transit_time(1, hops[i][j]))
        out.append(row)
    return out


def lookahead_closure(lookahead: List[List[int]]) -> List[List[int]]:
    """All-pairs shortest paths over the lookahead graph (Floyd–Warshall).

    ``D[k][j]`` is the cheapest multi-partition relay cost from ``k`` to
    ``j`` (0 on the diagonal): an event at ``k`` at time ``t`` cannot
    cause an event at ``j`` before ``t + D[k][j]``, however many
    partitions the causal chain crosses.
    """
    n = len(lookahead)
    dist = [[0 if i == j else lookahead[i][j] for j in range(n)] for i in range(n)]
    for k in range(n):
        dk = dist[k]
        for i in range(n):
            dik = dist[i][k]
            row = dist[i]
            for j in range(n):
                alt = dik + dk[j]
                if alt < row[j]:
                    row[j] = alt
    return dist


def _nprimes(docs: List[Dict[str, Any]], nparts: int) -> List[float]:
    """Import-adjusted earliest pending time per partition.

    Identical for every computing partition: inputs are the same
    published docs, so the fleet stays in lock-step without a second
    barrier per round.
    """
    nprime: List[float] = []
    for k in range(nparts):
        best = INF
        nxt = docs[k]["next"]
        if nxt is not None:
            best = float(nxt)
        for doc in docs:
            for rec in doc["exports"].get(str(k), ()):
                if rec[1] < best:
                    best = float(rec[1])
        nprime.append(best)
    return nprime


def _horizons(
    nprime: List[float], closure: List[List[int]], lookahead: List[List[int]]
) -> List[float]:
    """The per-partition safe horizon for this round (may be ``INF``)."""
    n = len(nprime)
    bound = [min(nprime[k] + closure[k][j] for k in range(n)) for j in range(n)]
    return [
        min((bound[k] + lookahead[k][i] for k in range(n) if k != i), default=INF)
        for i in range(n)
    ]


# -- exchange transports -----------------------------------------------------


class MemoryExchange:
    """In-process transport: a dict shared by round-robin partitions."""

    def __init__(self) -> None:
        self._docs: Dict[Tuple[int, int], Dict[str, Any]] = {}

    def publish(self, round_no: int, part: int, doc: Dict[str, Any]) -> None:
        self._docs[(round_no, part)] = doc

    def collect(self, round_no: int, nparts: int) -> List[Dict[str, Any]]:
        return [self._docs.pop((round_no, k)) for k in range(nparts)]


class DirExchange:
    """File transport: one atomically-renamed JSON per (round, partition).

    Readers poll for peers' files; a torn file is impossible (the writer
    renames into place) and a *re*written file — a respawned partition
    republishing after a crash — carries byte-identical content by
    determinism, so late reads and re-reads are both safe.

    Polling is accounted, not silent: ``poll_wait_s`` accumulates the
    wall-clock time this side spent sleeping on missing peer files (and
    ``polls`` the number of sleeps), which feeds the straggler report's
    transport-wait attribution and the wedged-run diagnostics.
    """

    def __init__(self, path: str, deadline_s: float = DEFAULT_EXCHANGE_DEADLINE_S):
        self.path = path
        self.deadline_s = deadline_s
        self.poll_wait_s = 0.0
        self.polls = 0
        os.makedirs(path, exist_ok=True)

    def _filename(self, round_no: int, part: int) -> str:
        return os.path.join(self.path, f"r{round_no:06d}-p{part:03d}.json")

    def publish(self, round_no: int, part: int, doc: Dict[str, Any]) -> None:
        from ...benchrunner.pool import atomic_write_bytes

        blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
        atomic_write_bytes(self._filename(round_no, part), blob.encode("utf-8"))

    def collect(self, round_no: int, nparts: int) -> List[Dict[str, Any]]:
        docs: List[Optional[Dict[str, Any]]] = [None] * nparts
        deadline = time.monotonic() + self.deadline_s
        missing = set(range(nparts))
        while missing:
            for part in sorted(missing):
                try:
                    with open(self._filename(round_no, part), encoding="utf-8") as fh:
                        docs[part] = json.load(fh)
                except (OSError, ValueError):
                    continue
                missing.discard(part)
            if not missing:
                break
            if time.monotonic() > deadline:
                raise RuntimeError(
                    f"exchange wedged: round {round_no} missing partitions "
                    f"{sorted(missing)} after {self.deadline_s}s "
                    f"({self.poll_wait_s:.1f}s cumulative poll-wait over "
                    f"{self.polls} polls)"
                )
            slept = time.monotonic()
            time.sleep(0.005)
            self.poll_wait_s += time.monotonic() - slept
            self.polls += 1
        return [doc for doc in docs if doc is not None]


# -- the per-partition driver ------------------------------------------------


def _chunk_to_jsonable(rec: Chunk) -> List[Any]:
    return [rec[0], rec[1], rec[2], list(rec[3]), *rec[4:]]


def _chunk_from_jsonable(rec: List[Any]) -> Chunk:
    return (
        rec[0],
        rec[1],
        rec[2],
        (rec[3][0], rec[3][1], rec[3][2]),
        rec[4],
        rec[5],
        rec[6],
        rec[7],
        rec[8],
    )


class PartitionRunner:
    """One partition's simulator plus its side of the round protocol."""

    def __init__(
        self,
        scenario: PlaneScenario,
        plan: PartitionPlan,
        idx: int,
        config: SeaStarConfig = DEFAULT_CONFIG,
    ):
        self.scenario = scenario
        self.plan = plan
        self.idx = idx
        topo = scenario.topology()
        self.topo = topo
        self.sim = Simulator()
        # node -> owning partition, for routing exports
        self._owner = [0] * topo.num_nodes
        for part, nodes in enumerate(plan.nodes):
            for node in nodes:
                self._owner[node] = part
        self._exports: Dict[int, List[Chunk]] = {}
        exporter = self._export if plan.nparts > 1 else None
        self.model = PlanePartition(
            self.sim,
            scenario,
            topo,
            plan.nodes[idx],
            exporter=exporter,
            config=config,
        )
        #: everything strictly below the floor has been simulated; an
        #: import below it would rewrite history
        self.floor: float = 0.0
        self.model.submit_initial()

    def _export(self, rec: Chunk) -> None:
        self._exports.setdefault(self._owner[rec[0]], []).append(rec)

    def publish_doc(self, round_no: int) -> Dict[str, Any]:
        """Drain exports and snapshot the earliest pending event time."""
        exports: Dict[str, List[List[Any]]] = {}
        for dest in sorted(self._exports):
            recs = sorted(self._exports[dest], key=lambda r: (r[1], r[2], r[3], r[4]))
            exports[str(dest)] = [_chunk_to_jsonable(r) for r in recs]
        self._exports.clear()
        return {
            "part": self.idx,
            "round": round_no,
            "next": self.sim.peek(),
            "exports": exports,
        }

    def absorb(self, docs: List[Dict[str, Any]]) -> int:
        """Import every chunk destined to this partition, checked.

        Returns the number of chunks imported (a telemetry fact; callers
        that don't record simply ignore it).
        """
        mine = str(self.idx)
        imported = 0
        for doc in docs:
            for raw in doc["exports"].get(mine, ()):
                rec = _chunk_from_jsonable(raw)
                if rec[1] < self.floor:
                    raise CausalityError(
                        f"partition {self.idx}: import at {rec[1]} ps below "
                        f"safe floor {self.floor} ps (from partition "
                        f"{doc['part']})"
                    )
                self.model.import_chunk(rec)
                imported += 1
        return imported

    def advance(self, horizon: float) -> None:
        """Simulate strictly below ``horizon`` (all of it when ``INF``)."""
        if horizon == INF:
            self.sim.run()
            self.floor = INF
            return
        until = int(horizon) - 1
        if until >= self.sim.now:
            self.sim.run(until=until)
        if horizon > self.floor:
            self.floor = horizon


# -- whole-run drivers -------------------------------------------------------


def _merge_delivered(
    parts: List[Dict[MsgKey, Tuple[int, int, int]]],
) -> Dict[MsgKey, Tuple[int, int, int]]:
    merged: Dict[MsgKey, Tuple[int, int, int]] = {}
    for delivered in parts:
        overlap = merged.keys() & delivered.keys()
        if overlap:  # pragma: no cover - defensive
            raise RuntimeError(f"message delivered by two partitions: {overlap}")
        merged.update(delivered)
    return merged


def _causality_flight_dump(
    flight_dir: str, role: str, recorder: Optional[RoundRecorder], exc: BaseException
) -> None:
    """Dump the recorder's round tail plus the failure event itself."""
    events: List[Dict[str, Any]] = recorder.tail_events() if recorder else []
    events.append(
        {
            "t_unix": round(time.time(), 6),
            "kind": "causality-error",
            "detail": str(exc),
        }
    )
    dump_flight(
        flight_dir,
        reason="causality-error",
        role=role,
        events=events,
        detail=str(exc),
    )


def _run_rounds_memory(
    scenario: PlaneScenario,
    plan: PartitionPlan,
    config: SeaStarConfig,
    *,
    telemetry: bool = False,
    flight_dir: Optional[str] = None,
) -> Tuple[Dict[MsgKey, Tuple[int, int, int]], Dict[str, Any]]:
    runners = [
        PartitionRunner(scenario, plan, i, config=config)
        for i in range(plan.nparts)
    ]
    recording = telemetry or flight_dir is not None
    recorders = [RoundRecorder(i) for i in range(plan.nparts)] if recording else None
    lookahead = lookahead_matrix(scenario, plan, config)
    closure = lookahead_closure(lookahead)
    rounds = 0
    while True:
        if recorders is None:
            docs = [r.publish_doc(rounds) for r in runners]
            nprime = _nprimes(docs, plan.nparts)
            for r in runners:
                r.absorb(docs)
            if all(v == INF for v in nprime):
                break
            horizons = _horizons(nprime, closure, lookahead)
            for i, r in enumerate(runners):
                r.advance(horizons[i])
            rounds += 1
            continue
        # instrumented round: identical protocol, with per-phase timing
        # recorded host-side (never into the simulated clock)
        docs = []
        t0s: List[float] = []
        publish_s: List[float] = []
        for i, r in enumerate(runners):
            t0 = recorders[i].offset()
            docs.append(r.publish_doc(rounds))
            t0s.append(t0)
            publish_s.append(recorders[i].offset() - t0)
        nprime = _nprimes(docs, plan.nparts)
        imports: List[int] = []
        absorb_s: List[float] = []
        for i, r in enumerate(runners):
            ta = recorders[i].offset()
            try:
                imports.append(r.absorb(docs))
            except CausalityError as exc:
                if flight_dir is not None:
                    _causality_flight_dump(
                        flight_dir, f"memory-part{i:02d}", recorders[i], exc
                    )
                raise
            absorb_s.append(recorders[i].offset() - ta)
        done = all(v == INF for v in nprime)
        horizons = (
            [INF] * plan.nparts if done else _horizons(nprime, closure, lookahead)
        )
        advance_s = [0.0] * plan.nparts
        if not done:
            for i, r in enumerate(runners):
                tv = recorders[i].offset()
                r.advance(horizons[i])
                advance_s[i] = recorders[i].offset() - tv
        for i, r in enumerate(runners):
            recorders[i].record_round(
                round_no=rounds,
                t0_s=t0s[i],
                publish_s=publish_s[i],
                collect_s=0.0,
                absorb_s=absorb_s[i],
                advance_s=advance_s[i],
                poll_wait_s=0.0,
                horizon_ps=None if horizons[i] == INF else int(horizons[i]),
                nprime_ps=None if nprime[i] == INF else int(nprime[i]),
                exports=sum(len(v) for v in docs[i]["exports"].values()),
                imports=imports[i],
                events=r.sim.events_scheduled,
            )
        if done:
            break
        rounds += 1
    delivered = _merge_delivered([r.model.delivered for r in runners])
    info: Dict[str, Any] = {
        "rounds": rounds,
        "events_scheduled": sum(r.sim.events_scheduled for r in runners),
    }
    if telemetry and recorders is not None:
        parts = [rec.to_jsonable() for rec in recorders]
        info["telemetry"] = {
            "partitions": parts,
            "straggler": straggler_report(parts),
        }
    return delivered, info


def _partition_main(payload: Tuple[Any, ...]) -> Dict[str, Any]:
    """Pool-worker entry: run ONE partition for the whole scenario.

    Lives at module level so the spawn pool can pickle it.  State never
    crosses process boundaries except through the exchange directory, so
    a SIGKILLed attempt re-runs from t=0 and — by determinism —
    republishes byte-identical round files before producing the same
    partition result.
    """
    (
        scenario,
        nparts,
        idx,
        axis,
        exchange_dir,
        deadline_s,
        config,
        telemetry,
        flight_dir,
    ) = payload
    plan = partition_nodes(scenario.topology(), nparts, axis)
    runner = PartitionRunner(scenario, plan, idx, config=config)
    recording = telemetry or flight_dir is not None
    rec = RoundRecorder(idx) if recording else None
    lookahead = lookahead_matrix(scenario, plan, config)
    closure = lookahead_closure(lookahead)
    exchange = DirExchange(exchange_dir, deadline_s=deadline_s)
    rounds = 0
    while True:
        t0 = rec.offset() if rec is not None else 0.0
        doc = runner.publish_doc(rounds)
        exchange.publish(rounds, idx, doc)
        t1 = rec.offset() if rec is not None else 0.0
        wait0 = exchange.poll_wait_s
        docs = exchange.collect(rounds, plan.nparts)
        t2 = rec.offset() if rec is not None else 0.0
        nprime = _nprimes(docs, plan.nparts)
        try:
            imports = runner.absorb(docs)
        except CausalityError as exc:
            if flight_dir is not None:
                _causality_flight_dump(flight_dir, f"part{idx:02d}", rec, exc)
            raise
        t3 = rec.offset() if rec is not None else 0.0
        done = all(v == INF for v in nprime)
        if not done:
            horizon = _horizons(nprime, closure, lookahead)[idx]
            runner.advance(horizon)
        else:
            horizon = INF
        if rec is not None:
            t4 = rec.offset()
            rec.record_round(
                round_no=rounds,
                t0_s=t0,
                publish_s=t1 - t0,
                collect_s=t2 - t1,
                absorb_s=t3 - t2,
                advance_s=t4 - t3,
                poll_wait_s=exchange.poll_wait_s - wait0,
                horizon_ps=None if horizon == INF else int(horizon),
                nprime_ps=None if nprime[idx] == INF else int(nprime[idx]),
                exports=sum(len(v) for v in doc["exports"].values()),
                imports=imports,
                events=runner.sim.events_scheduled,
            )
        if done:
            break
        rounds += 1
    result = {
        "part": idx,
        "rounds": rounds,
        "events_scheduled": runner.sim.events_scheduled,
        "delivered": [
            [k[0], k[1], k[2], v[0], v[1], v[2]]
            for k, v in sorted(runner.model.delivered.items())
        ],
    }
    if rec is not None:
        result["telemetry"] = rec.to_jsonable()
        result["poll_wait_s"] = round(exchange.poll_wait_s, 6)
        result["polls"] = exchange.polls
    return result


def _run_rounds_pool(
    scenario: PlaneScenario,
    plan: PartitionPlan,
    config: SeaStarConfig,
    *,
    exchange_dir: Optional[str],
    deadline_s: float,
    pool_timeout_s: float,
    progress: Optional[Callable[[str], None]],
    telemetry: bool = False,
    flight_dir: Optional[str] = None,
) -> Tuple[Dict[MsgKey, Tuple[int, int, int]], Dict[str, Any]]:
    from ...benchrunner.pool import PoolTask, run_pool

    own_dir = exchange_dir is None
    exdir = exchange_dir or tempfile.mkdtemp(prefix="repro-plane-")
    tasks = [
        PoolTask(
            task_id=f"plane-{scenario.name}-part{idx:02d}",
            payload=(
                scenario,
                plan.nparts,
                idx,
                plan.axis,
                exdir,
                deadline_s,
                config,
                telemetry,
                flight_dir,
            ),
        )
        for idx in range(plan.nparts)
    ]
    try:
        # every partition must hold a worker slot for the whole run —
        # they synchronize with each other, so workers == nparts is a
        # liveness requirement, not a tuning knob
        outcome = run_pool(
            tasks,
            _partition_main,
            workers=plan.nparts,
            timeout_s=pool_timeout_s,
            progress=progress,
        )
    finally:
        if own_dir:
            import shutil

            shutil.rmtree(exdir, ignore_errors=True)
    # flight dumps never live in exdir (removed above when owned): the
    # parent-side post-mortem interleaves pool lifecycle events with the
    # round tails the surviving workers returned
    if flight_dir is not None and (outcome.degradations or outcome.failed):
        events_log: List[Dict[str, Any]] = [
            {
                "t_unix": ev["t_unix"],
                "kind": f"pool.{ev['event']}",
                **{k: v for k, v in ev.items() if k not in ("t_unix", "event")},
            }
            for ev in outcome.lifecycle
        ]
        for task in tasks:
            doc = outcome.results.get(task.task_id)
            if doc and doc.get("telemetry"):
                events_log.extend(doc_tail_events(doc["telemetry"]))
        detail = "; ".join(
            f"{d['task']}: {d['event']}" for d in outcome.degradations
        ) or "; ".join(f"{tid}: {err}" for tid, err in sorted(outcome.failed.items()))
        dump_flight(
            flight_dir,
            reason="worker-crash",
            role="pool-parent",
            events=events_log,
            detail=detail,
        )
    if outcome.failed:
        detail = "; ".join(
            f"{tid}: {err}" for tid, err in sorted(outcome.failed.items())
        )
        raise RuntimeError(f"partitions failed permanently: {detail}")
    parts: List[Dict[MsgKey, Tuple[int, int, int]]] = []
    events = 0
    rounds = 0
    for task in tasks:
        doc = outcome.results[task.task_id]
        events += doc["events_scheduled"]
        rounds = max(rounds, doc["rounds"])
        parts.append(
            {(m[0], m[1], m[2]): (m[3], m[4], m[5]) for m in doc["delivered"]}
        )
    delivered = _merge_delivered(parts)
    info: Dict[str, Any] = {
        "rounds": rounds,
        "events_scheduled": events,
        "pool": outcome.counters(),
    }
    if outcome.degradations:
        info["degradations"] = outcome.degradations
    if telemetry:
        part_docs = [
            outcome.results[task.task_id].get("telemetry") for task in tasks
        ]
        info["telemetry"] = {
            "partitions": part_docs,
            "straggler": straggler_report(part_docs),
        }
        info["poll_wait_s"] = round(
            sum(
                outcome.results[task.task_id].get("poll_wait_s", 0.0)
                for task in tasks
            ),
            6,
        )
    return delivered, info


def run_scenario(
    scenario: PlaneScenario,
    nparts: int = 1,
    *,
    transport: str = "memory",
    axis: Optional[int] = None,
    config: SeaStarConfig = DEFAULT_CONFIG,
    exchange_dir: Optional[str] = None,
    exchange_deadline_s: float = DEFAULT_EXCHANGE_DEADLINE_S,
    pool_timeout_s: float = 600.0,
    progress: Optional[Callable[[str], None]] = None,
    telemetry: bool = False,
    flight_dir: Optional[str] = None,
) -> Dict[str, Any]:
    """Run one plane scenario, serial or partitioned.

    Returns ``{"result": ..., "info": ...}``: ``result`` is the gated,
    partition-invariant document (identical bytes whatever ``nparts`` or
    ``transport``), ``info`` carries host/partitioning facts (rounds,
    events scheduled, wall clock, pool degradations) that legitimately
    vary — the documented relaxation of the exactness contract.

    ``telemetry=True`` records per-partition round phase timing into
    ``info["telemetry"]`` (partitions + straggler report); it is
    host-side only, so the ``result`` half is bit-identical either way.
    ``flight_dir`` (default: ``$REPRO_FLIGHT_DIR``) enables post-mortem
    flight dumps on ``CausalityError`` or worker crash; it must not be
    the exchange directory, which is transient.

    ``nparts`` is clamped to the slab axis extent (a partition owns at
    least one full coordinate plane); the effective count is reported in
    ``info["partitions"]``.
    """
    if transport not in ("memory", "pool"):
        raise ValueError(f"unknown transport {transport!r}")
    if flight_dir is None:
        flight_dir = default_flight_dir()
    topo = scenario.topology()
    plan = partition_nodes(topo, nparts, axis)
    t0 = time.perf_counter()
    if plan.nparts == 1:
        sim = Simulator()
        model = PlanePartition(
            sim, scenario, topo, plan.nodes[0], exporter=None, config=config
        )
        model.submit_initial()
        sim.run()
        delivered = model.delivered
        info: Dict[str, Any] = {
            "rounds": 0,
            "events_scheduled": sim.events_scheduled,
        }
    elif transport == "memory":
        delivered, info = _run_rounds_memory(
            scenario, plan, config, telemetry=telemetry, flight_dir=flight_dir
        )
    else:
        delivered, info = _run_rounds_pool(
            scenario,
            plan,
            config,
            exchange_dir=exchange_dir,
            deadline_s=exchange_deadline_s,
            pool_timeout_s=pool_timeout_s,
            progress=progress,
            telemetry=telemetry,
            flight_dir=flight_dir,
        )
    info["partitions"] = plan.nparts
    info["transport"] = transport if plan.nparts > 1 else "serial"
    info["wall_s"] = round(time.perf_counter() - t0, 4)
    return {"result": result_document(scenario, delivered), "info": info}
