"""Measurement and tracing utilities for the simulation stack.

These are deliberately lightweight: the benchmark harness derives all of its
numbers from explicit timestamps, but counters and traces are invaluable for
validating *why* a latency number is what it is (e.g. asserting exactly how
many interrupts fired for a 1-byte put versus a 1-KB put).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

from .core import Simulator

__all__ = [
    "TraceRecord",
    "Tracer",
    "Span",
    "SpanTracer",
    "Counters",
    "TimeSeries",
]


@dataclass(frozen=True)
class TraceRecord:
    """One traced occurrence: time, category, and free-form detail."""

    time: int
    category: str
    detail: Any = None


class Tracer:
    """Append-only trace of categorized records with query helpers."""

    __slots__ = ("sim", "records", "enabled")

    def __init__(self, sim: Simulator, enabled: bool = True):
        self.sim = sim
        self.records: list[TraceRecord] = []
        self.enabled = enabled

    def emit(self, category: str, detail: Any = None) -> None:
        """Record ``category`` at the current simulation time."""
        if self.enabled:
            self.records.append(TraceRecord(self.sim.now, category, detail))

    def by_category(self, category: str) -> list[TraceRecord]:
        """All records for one category, in time order."""
        return [r for r in self.records if r.category == category]

    def count(self, category: str) -> int:
        """Number of records for ``category``."""
        return sum(1 for r in self.records if r.category == category)

    def between(self, start: int, end: int) -> list[TraceRecord]:
        """Records with ``start <= time < end``."""
        return [r for r in self.records if start <= r.time < end]

    def clear(self) -> None:
        """Drop all records."""
        self.records.clear()


@dataclass(eq=False)
class Span:
    """One named interval on the simulated timeline.

    ``node`` and ``component`` place the span on the two-node timeline
    (Chrome-trace "process" and "thread"); ``msg_id`` is the per-message
    correlation id assigned by the firmware's chunker, or ``None`` for
    work not attributable to a single message.  ``t1 is None`` while the
    span is still open; an *instant* span has ``t1 == t0``.
    """

    name: str
    node: int
    component: str
    t0: int
    t1: Optional[int] = None
    msg_id: Optional[int] = None
    args: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> int:
        """Span length in picoseconds (0 while the span is open)."""
        return 0 if self.t1 is None else self.t1 - self.t0


class SpanTracer(Tracer):
    """A :class:`Tracer` that also records begin/end spans.

    Instrumentation sites hold a reference to the tracer (or ``None``
    when tracing is off) and call :meth:`begin`/:meth:`end` around the
    simulated work.  Both are plain list appends — no events are
    scheduled, so enabling tracing cannot perturb simulated time.
    """

    __slots__ = ("spans", "_open")

    def __init__(self, sim: Simulator, enabled: bool = True):
        super().__init__(sim, enabled)
        self.spans: list[Span] = []
        self._open: dict[tuple[int, str], list[Span]] = {}

    def begin(
        self,
        name: str,
        *,
        node: int,
        component: str,
        msg_id: Optional[int] = None,
        **args: Any,
    ) -> Optional[Span]:
        """Open a span at the current simulation time."""
        if not self.enabled:
            return None
        span = Span(name, node, component, self.sim.now, msg_id=msg_id,
                    args=dict(args))
        self.spans.append(span)
        self._open.setdefault((node, component), []).append(span)
        return span

    def end(self, span: Optional[Span], **args: Any) -> None:
        """Close ``span`` at the current simulation time."""
        if span is None or not self.enabled:
            return
        span.t1 = self.sim.now
        if args:
            span.args.update(args)
        stack = self._open.get((span.node, span.component))
        if stack and span in stack:
            stack.remove(span)

    def instant(
        self,
        name: str,
        *,
        node: int,
        component: str,
        msg_id: Optional[int] = None,
        **args: Any,
    ) -> Optional[Span]:
        """Record a zero-duration span at the current time."""
        if not self.enabled:
            return None
        span = Span(name, node, component, self.sim.now, t1=self.sim.now,
                    msg_id=msg_id, args=dict(args))
        self.spans.append(span)
        return span

    def open_spans(self) -> list[Span]:
        """Spans begun but not yet ended (normally empty after a run)."""
        return [s for stack in self._open.values() for s in stack]

    def clear(self) -> None:
        super().clear()
        self.spans.clear()
        self._open.clear()


class Counters:
    """Named integer counters (interrupts raised, packets sent, ...)."""

    __slots__ = ("_counts",)

    def __init__(self) -> None:
        self._counts: Counter[str] = Counter()

    def incr(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to counter ``name``."""
        self._counts[name] += amount

    def counts(self) -> Counter[str]:
        """The live mutable counter mapping, for hot-path increments.

        Engine loops hoist this once (``counts = engine.counters.counts()``)
        and bump keys directly (``counts["packets"] += n``) instead of
        paying an attribute lookup plus method call per packet.  The
        returned object is the counter's own storage: mutations are
        immediately visible through :meth:`__getitem__`/:meth:`snapshot`,
        and it is invalidated by :meth:`reset` with ``names=None`` only in
        the sense that cleared keys restart from zero.
        """
        return self._counts

    def __getitem__(self, name: str) -> int:
        return self._counts[name]

    def snapshot(self) -> dict[str, int]:
        """Copy of all counters."""
        return dict(self._counts)

    def merge(self, other: "Counters | dict[str, int]") -> "Counters":
        """Add another counter set (or dict) into this one; returns self.

        Used to aggregate per-node counters into machine-wide totals
        (e.g. the fault/recovery report sums firmware counters across
        every node).
        """
        items = other.snapshot() if isinstance(other, Counters) else other
        for name, amount in items.items():
            self._counts[name] += amount
        return self

    def reset(self, names: Optional[Iterable[str]] = None) -> None:
        """Zero the given counters (or all of them)."""
        if names is None:
            self._counts.clear()
        else:
            for name in names:
                self._counts[name] = 0


@dataclass
class TimeSeries:
    """(time, value) samples with summary statistics."""

    name: str = ""
    times: list[int] = field(default_factory=list)
    values: list[float] = field(default_factory=list)

    def sample(self, time: int, value: float) -> None:
        """Append one observation."""
        self.times.append(time)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.values)

    def _require_samples(self) -> None:
        if not self.values:
            raise ValueError(
                f"time series {self.name!r} has no samples"
            )

    @property
    def mean(self) -> float:
        """Arithmetic *sample* mean of the values; raises ValueError when empty.

        For occupancy/depth series (mailbox FIFO depth, SRAM bytes in
        use) this over-weights bursts of rapid samples — use
        :meth:`time_weighted_mean` for those.
        """
        self._require_samples()
        return sum(self.values) / len(self.values)

    def integral(self, until: Optional[int] = None) -> float:
        """Integrate the series as a step function, in value·ps.

        Each sampled value is held from its own sample time until the
        next sample; the last value is held until ``until`` (default:
        the final sample time, i.e. the last value then contributes
        nothing).  An empty series integrates to 0.0.
        """
        if not self.values:
            return 0.0
        end = self.times[-1] if until is None else until
        total = 0.0
        times, values = self.times, self.values
        for i in range(len(values) - 1):
            total += values[i] * (times[i + 1] - times[i])
        total += values[-1] * (end - times[-1])
        return total

    def time_weighted_mean(self, until: Optional[int] = None) -> float:
        """Step-function average of the series over its covered span.

        The span runs from the first sample time to ``until`` (default:
        the last sample time).  Raises ValueError when empty; a
        single-sample (or zero-span) series averages to that value.
        """
        self._require_samples()
        end = self.times[-1] if until is None else until
        span = end - self.times[0]
        if span <= 0:
            return self.values[-1]
        return self.integral(until=end) / span

    @property
    def max(self) -> float:
        """Largest value; raises ValueError when empty."""
        self._require_samples()
        return max(self.values)

    @property
    def min(self) -> float:
        """Smallest value; raises ValueError when empty."""
        self._require_samples()
        return min(self.values)
