"""Measurement and tracing utilities for the simulation stack.

These are deliberately lightweight: the benchmark harness derives all of its
numbers from explicit timestamps, but counters and traces are invaluable for
validating *why* a latency number is what it is (e.g. asserting exactly how
many interrupts fired for a 1-byte put versus a 1-KB put).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

from .core import Simulator

__all__ = ["TraceRecord", "Tracer", "Counters", "TimeSeries"]


@dataclass(frozen=True)
class TraceRecord:
    """One traced occurrence: time, category, and free-form detail."""

    time: int
    category: str
    detail: Any = None


class Tracer:
    """Append-only trace of categorized records with query helpers."""

    __slots__ = ("sim", "records", "enabled")

    def __init__(self, sim: Simulator, enabled: bool = True):
        self.sim = sim
        self.records: list[TraceRecord] = []
        self.enabled = enabled

    def emit(self, category: str, detail: Any = None) -> None:
        """Record ``category`` at the current simulation time."""
        if self.enabled:
            self.records.append(TraceRecord(self.sim.now, category, detail))

    def by_category(self, category: str) -> list[TraceRecord]:
        """All records for one category, in time order."""
        return [r for r in self.records if r.category == category]

    def count(self, category: str) -> int:
        """Number of records for ``category``."""
        return sum(1 for r in self.records if r.category == category)

    def between(self, start: int, end: int) -> list[TraceRecord]:
        """Records with ``start <= time < end``."""
        return [r for r in self.records if start <= r.time < end]

    def clear(self) -> None:
        """Drop all records."""
        self.records.clear()


class Counters:
    """Named integer counters (interrupts raised, packets sent, ...)."""

    __slots__ = ("_counts",)

    def __init__(self) -> None:
        self._counts: Counter[str] = Counter()

    def incr(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to counter ``name``."""
        self._counts[name] += amount

    def __getitem__(self, name: str) -> int:
        return self._counts[name]

    def snapshot(self) -> dict[str, int]:
        """Copy of all counters."""
        return dict(self._counts)

    def merge(self, other: "Counters | dict[str, int]") -> "Counters":
        """Add another counter set (or dict) into this one; returns self.

        Used to aggregate per-node counters into machine-wide totals
        (e.g. the fault/recovery report sums firmware counters across
        every node).
        """
        items = other.snapshot() if isinstance(other, Counters) else other
        for name, amount in items.items():
            self._counts[name] += amount
        return self

    def reset(self, names: Optional[Iterable[str]] = None) -> None:
        """Zero the given counters (or all of them)."""
        if names is None:
            self._counts.clear()
        else:
            for name in names:
                self._counts[name] = 0


@dataclass
class TimeSeries:
    """(time, value) samples with summary statistics."""

    name: str = ""
    times: list[int] = field(default_factory=list)
    values: list[float] = field(default_factory=list)

    def sample(self, time: int, value: float) -> None:
        """Append one observation."""
        self.times.append(time)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.values)

    @property
    def mean(self) -> float:
        """Arithmetic mean of the values (0.0 when empty)."""
        return sum(self.values) / len(self.values) if self.values else 0.0

    @property
    def max(self) -> float:
        """Largest value (0.0 when empty)."""
        return max(self.values) if self.values else 0.0

    @property
    def min(self) -> float:
        """Smallest value (0.0 when empty)."""
        return min(self.values) if self.values else 0.0
