"""Message-passing primitives built on the DES kernel.

:class:`Channel` is an unbounded FIFO of items with blocking ``get``;
:class:`Store` adds a capacity bound so ``put`` can also block.  Both keep
strict FIFO ordering of waiters, which the firmware model relies on (the
SeaStar serializes all transmits through a single TX FIFO).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional, Union

from .core import Event, Resolved, Simulator

__all__ = ["Channel", "Store"]

#: waits that are already satisfied at call time are returned as cheap
#: :class:`Resolved` markers instead of pre-triggered Events (see the
#: *Flattened sleeps* section of :mod:`repro.sim.core`)
Wait = Union[Event, Resolved]

#: shared marker for value-less completions (Store.put acceptance) —
#: Resolved is immutable-by-convention, so one instance serves them all
_ACCEPTED = Resolved(None)


class Channel:
    """Unbounded FIFO channel.

    ``put`` never blocks; ``get`` returns an event that fires with the next
    item (immediately if one is queued, otherwise when one arrives).
    """

    __slots__ = ("sim", "_items", "_getters", "name")

    def __init__(self, sim: Simulator, name: str = ""):
        self.sim = sim
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def waiting(self) -> int:
        """Number of blocked getters."""
        return len(self._getters)

    def put(self, item: Any) -> None:
        """Deposit ``item``; wakes the oldest blocked getter if any."""
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Wait:
        """Wait that fires with the next item in FIFO order.

        Returns a :class:`Resolved` marker when an item is already
        queued, a pending :class:`Event` otherwise — yield either.
        """
        if self._items:
            return Resolved(self._items.popleft())
        event = Event(self.sim)
        self._getters.append(event)
        return event

    def peek(self) -> Any:
        """Look at the head item without removing it.

        Raises :class:`IndexError` when empty.
        """
        return self._items[0]

    def drain(self) -> list[Any]:
        """Remove and return all queued items (non-blocking)."""
        items = list(self._items)
        self._items.clear()
        return items


class Store(Channel):
    """A channel with finite ``capacity``: ``put`` blocks when full.

    ``put`` returns an event the producer must wait on.  Items are accepted
    in producer FIFO order.
    """

    __slots__ = ("capacity", "_putters")

    def __init__(self, sim: Simulator, capacity: int, name: str = ""):
        if capacity < 1:
            raise ValueError("Store capacity must be >= 1")
        super().__init__(sim, name=name)
        self.capacity = capacity
        self._putters: Deque[tuple[Event, Any]] = deque()

    def put(self, item: Any) -> Wait:  # type: ignore[override]
        """Wait that fires once ``item`` has been accepted.

        Immediate acceptance returns the shared :class:`Resolved`
        marker; a full store returns a pending :class:`Event`.  The
        getter wake-up (if any) is scheduled *before* the marker is
        returned, so yielding the marker preserves the classic
        getter-then-putter same-time ordering.
        """
        if self._getters:
            self._getters.popleft().succeed(item)
            return _ACCEPTED
        if len(self._items) < self.capacity:
            self._items.append(item)
            return _ACCEPTED
        event = Event(self.sim)
        self._putters.append((event, item))
        return event

    def get(self) -> Wait:
        if self._items:
            if not self._putters:
                return Resolved(self._items.popleft())
            # A blocked producer moves up: keep the classic pre-triggered
            # Event here so the getter's heap record is allocated BEFORE
            # the putter's — same-time resume order is load-bearing and a
            # Resolved marker would claim its slot only at yield time.
            event = Event(self.sim)
            event.succeed(self._items.popleft())
            put_event, item = self._putters.popleft()
            self._items.append(item)
            put_event.succeed(None)
            return event
        if self._putters:
            # capacity could be saturated with zero queued items only if
            # capacity==0, which __init__ forbids; this branch handles a
            # direct producer->consumer handoff after a drain().
            event = Event(self.sim)
            put_event, item = self._putters.popleft()
            event.succeed(item)
            put_event.succeed(None)
            return event
        event = Event(self.sim)
        self._getters.append(event)
        return event

    @property
    def full(self) -> bool:
        """True when the buffer has reached capacity."""
        return len(self._items) >= self.capacity
