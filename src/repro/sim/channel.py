"""Message-passing primitives built on the DES kernel.

:class:`Channel` is an unbounded FIFO of items with blocking ``get``;
:class:`Store` adds a capacity bound so ``put`` can also block.  Both keep
strict FIFO ordering of waiters, which the firmware model relies on (the
SeaStar serializes all transmits through a single TX FIFO).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from .core import Event, Simulator

__all__ = ["Channel", "Store"]


class Channel:
    """Unbounded FIFO channel.

    ``put`` never blocks; ``get`` returns an event that fires with the next
    item (immediately if one is queued, otherwise when one arrives).
    """

    __slots__ = ("sim", "_items", "_getters", "name")

    def __init__(self, sim: Simulator, name: str = ""):
        self.sim = sim
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def waiting(self) -> int:
        """Number of blocked getters."""
        return len(self._getters)

    def put(self, item: Any) -> None:
        """Deposit ``item``; wakes the oldest blocked getter if any."""
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Event that fires with the next item in FIFO order."""
        event = Event(self.sim)
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event

    def peek(self) -> Any:
        """Look at the head item without removing it.

        Raises :class:`IndexError` when empty.
        """
        return self._items[0]

    def drain(self) -> list[Any]:
        """Remove and return all queued items (non-blocking)."""
        items = list(self._items)
        self._items.clear()
        return items


class Store(Channel):
    """A channel with finite ``capacity``: ``put`` blocks when full.

    ``put`` returns an event the producer must wait on.  Items are accepted
    in producer FIFO order.
    """

    __slots__ = ("capacity", "_putters")

    def __init__(self, sim: Simulator, capacity: int, name: str = ""):
        if capacity < 1:
            raise ValueError("Store capacity must be >= 1")
        super().__init__(sim, name=name)
        self.capacity = capacity
        self._putters: Deque[tuple[Event, Any]] = deque()

    def put(self, item: Any) -> Event:  # type: ignore[override]
        """Event that fires once ``item`` has been accepted."""
        event = Event(self.sim)
        if self._getters:
            self._getters.popleft().succeed(item)
            event.succeed(None)
        elif len(self._items) < self.capacity:
            self._items.append(item)
            event.succeed(None)
        else:
            self._putters.append((event, item))
        return event

    def get(self) -> Event:
        event = Event(self.sim)
        if self._items:
            event.succeed(self._items.popleft())
            if self._putters:
                put_event, item = self._putters.popleft()
                self._items.append(item)
                put_event.succeed(None)
        elif self._putters:
            # capacity could be saturated with zero queued items only if
            # capacity==0, which __init__ forbids; this branch handles a
            # direct producer->consumer handoff after a drain().
            put_event, item = self._putters.popleft()
            event.succeed(item)
            put_event.succeed(None)
        else:
            self._getters.append(event)
        return event

    @property
    def full(self) -> bool:
        """True when the buffer has reached capacity."""
        return len(self._items) >= self.capacity
