"""Shared-resource primitives: mutual exclusion and modeled CPUs.

:class:`Resource` is a counted semaphore with FIFO (optionally prioritized)
queueing.  :class:`CPU` layers a convenient ``execute`` coroutine on top for
modeling serialized processors — the SeaStar's embedded PowerPC 440 and the
host Opteron are both single execution resources whose handlers run to
completion, exactly as the paper describes the firmware's single-threaded
dispatch loop.
"""

from __future__ import annotations

import heapq
from typing import Any, Generator, Optional

from .core import Event, Simulator

__all__ = ["Resource", "Request", "CPU"]


class Request(Event):
    """A pending claim on a :class:`Resource`.

    Fires when the resource is granted.  Must be released via
    :meth:`Resource.release` exactly once after being granted.
    """

    __slots__ = ("resource", "priority", "_key")

    def __init__(self, resource: "Resource", priority: int):
        super().__init__(resource.sim)
        self.resource = resource
        self.priority = priority


class Resource:
    """Counted resource with priority + FIFO queueing.

    ``capacity`` concurrent holders are allowed.  Waiters are granted in
    ``(priority, arrival)`` order — lower priority value first, ties broken
    by arrival.  The default priority is 0 for every request, which gives
    plain FIFO behaviour.
    """

    __slots__ = ("sim", "capacity", "name", "_in_use", "_queue", "_seq")

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise ValueError("Resource capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._queue: list[tuple[int, int, Request]] = []
        self._seq = 0

    @property
    def in_use(self) -> int:
        """Number of currently granted requests."""
        return self._in_use

    @property
    def queued(self) -> int:
        """Number of waiting requests."""
        return len(self._queue)

    def request(self, priority: int = 0) -> Request:
        """Claim the resource; returned event fires when granted."""
        req = Request(self, priority)
        if self._in_use < self.capacity and not self._queue:
            self._in_use += 1
            req.succeed(req)
        else:
            heapq.heappush(self._queue, (priority, self._seq, req))
            self._seq += 1
        return req

    def release(self, request: Request) -> None:
        """Return a granted claim; wakes the best-priority waiter."""
        if request.resource is not self:
            raise ValueError("request does not belong to this resource")
        if not request.triggered:
            # Cancel a still-queued request.
            self._queue = [(p, s, r) for (p, s, r) in self._queue if r is not request]
            heapq.heapify(self._queue)
            return
        if self._in_use <= 0:
            raise RuntimeError(f"release() on idle resource {self.name!r}")
        self._in_use -= 1
        if self._queue and self._in_use < self.capacity:
            _, _, nxt = heapq.heappop(self._queue)
            self._in_use += 1
            nxt.succeed(nxt)

    def use(self, duration: int, priority: int = 0) -> Generator[Event, Any, None]:
        """Coroutine: hold the resource for ``duration`` ps."""
        req = self.request(priority)
        yield req
        try:
            # int yield: flattened sleep (see repro.sim.core)
            yield duration
        finally:
            self.release(req)


class CPU(Resource):
    """A serialized processor with an accounting of busy time.

    ``execute(cost)`` models running a handler of ``cost`` picoseconds to
    completion.  ``priority`` lets interrupt-context work jump ahead of
    queued application work (lower value = more urgent); a running handler
    is never preempted, matching run-to-completion firmware/kernel handlers.
    """

    __slots__ = ("busy_time", "_last_grant", "clock_hz", "m_busy")

    #: Priority levels used across the stack.
    PRIO_INTERRUPT = -10
    PRIO_KERNEL = -5
    PRIO_APP = 0

    def __init__(self, sim: Simulator, name: str = "", clock_hz: float = 1.0e9):
        super().__init__(sim, capacity=1, name=name)
        self.clock_hz = clock_hz
        self.busy_time = 0
        # Optional metrics busy timeline (repro.metrics.Timeline), set by
        # the machine builder when metrics are enabled.  Appends only —
        # never schedules events — so enabling it cannot move sim time.
        self.m_busy: Optional[Any] = None

    def execute(self, cost: int, priority: int = 0) -> Generator[Event, Any, None]:
        """Coroutine: acquire the CPU, burn ``cost`` ps, release."""
        req = self.request(priority)
        yield req
        try:
            if cost > 0:
                yield cost
                self.busy_time += cost
                if self.m_busy is not None:
                    self.m_busy.add(self.sim.now - cost, self.sim.now)
        finally:
            self.release(req)

    def charge(self, cost: int) -> Generator[Event, Any, None]:
        """Coroutine: burn ``cost`` ps *while already holding* this CPU.

        For use inside a handler body that acquired the CPU via
        :meth:`execute`/:meth:`request` — re-acquiring would deadlock a
        capacity-1 resource.
        """
        if cost > 0:
            yield cost
            self.busy_time += cost
            if self.m_busy is not None:
                self.m_busy.add(self.sim.now - cost, self.sim.now)

    def cycles(self, n: int) -> int:
        """Duration in ps of ``n`` clock cycles at this CPU's frequency."""
        return max(1, round(n * 1e12 / self.clock_hz))

    def utilization(self, elapsed: Optional[int] = None) -> float:
        """Fraction of ``elapsed`` (default: sim.now) spent executing."""
        total = self.sim.now if elapsed is None else elapsed
        if total <= 0:
            return 0.0
        return self.busy_time / total
