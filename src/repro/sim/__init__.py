"""Deterministic discrete-event simulation kernel.

Everything in the reproduction runs on this engine: the SeaStar hardware
models, the firmware, the OS kernels, Portals, MPI and NetPIPE are all
processes exchanging events on a single integer-picosecond clock.
"""

from .channel import Channel, Store
from .core import (
    BULK_EVENTS_DEFAULT,
    DIRECT_RESUME_DEFAULT,
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    Resolved,
    SimulationError,
    Simulator,
    Timeout,
)
from .monitor import Counters, Span, SpanTracer, TimeSeries, TraceRecord, Tracer
from .resource import CPU, Request, Resource
from .units import (
    GB,
    KB,
    MB,
    MS,
    NS,
    PS,
    SEC,
    US,
    fmt_bytes,
    fmt_time,
    ns,
    rate_mb_s,
    to_ns,
    to_us,
    transfer_time,
    us,
)

__all__ = [
    "Simulator",
    "Event",
    "Timeout",
    "Process",
    "AnyOf",
    "AllOf",
    "Interrupt",
    "SimulationError",
    "Resolved",
    "DIRECT_RESUME_DEFAULT",
    "BULK_EVENTS_DEFAULT",
    "Channel",
    "Store",
    "Resource",
    "Request",
    "CPU",
    "Tracer",
    "TraceRecord",
    "Span",
    "SpanTracer",
    "Counters",
    "TimeSeries",
    "PS",
    "NS",
    "US",
    "MS",
    "SEC",
    "KB",
    "MB",
    "GB",
    "ns",
    "us",
    "to_ns",
    "to_us",
    "transfer_time",
    "rate_mb_s",
    "fmt_time",
    "fmt_bytes",
]
