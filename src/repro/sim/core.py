"""Discrete-event simulation kernel.

A small, deterministic, generator-based DES engine in the style of SimPy,
written from scratch so the whole stack has no dependencies outside the
standard library and NumPy.

Model
-----
* :class:`Simulator` owns an event heap keyed by ``(time, seq)``; ``seq`` is
  a monotonically increasing tie-breaker so simultaneous events always fire
  in scheduling order — runs are bit-for-bit reproducible.
* :class:`Event` is a one-shot occurrence.  It is *triggered* when given a
  value (or failure) and scheduled, and *processed* once its callbacks have
  run.
* :class:`Process` wraps a Python generator.  The generator ``yield``\\ s
  events; the process resumes when the yielded event fires.  A process is
  itself an event that succeeds with the generator's return value, so
  processes can wait on each other (fork/join).
* :class:`Timeout` fires after a fixed delay.
* :class:`AnyOf` / :class:`AllOf` compose events.

Flattened sleeps (the hot path)
-------------------------------
A process may also yield a bare non-negative ``int`` — a pure delay in
picoseconds, equivalent to ``yield sim.timeout(n)``.  By default
(``Simulator(direct_resume=True)``) the kernel services it without
constructing a Timeout at all: the heap gets a flattened 5-slot record
``[when, seq, None, process, value]`` and the run loop resumes the
process directly when it pops.  Records are plain lists so spent sleep
records can be recycled through a small arena (``_ARENA_MAX``) instead
of being reallocated — the run loop returns each popped sleep record to
the arena and the scheduler reuses it for the next sleep, cutting
allocator churn on the hottest path in the repository.  This removes one Event object, one callbacks
list, one bound-method callback and one dispatch per sleep — the
dominant per-event cost of DMA/wire/CPU modeling — while allocating
``seq`` at exactly the point the Timeout would have been created, so
event ordering (and therefore every simulated result) is bit-identical.
The ``seq`` doubles as the wake token: :meth:`Process.interrupt` disarms
a pending sleep by resetting the process's token, and the stale record
is ignored when it surfaces.  ``Simulator(direct_resume=False)`` routes
int yields through a real :class:`Timeout` instead (the legacy path,
kept so tests can A/B the two).

:class:`Resolved` extends the same idea to already-satisfied waits:
channel/store operations that complete immediately return a ``Resolved``
marker instead of a pre-triggered Event, and yielding it parks the
process on a flattened record carrying the value.  The wake-up still
round-trips the heap (same-time ordering is load-bearing), but without
the Event object, callbacks list, or callback dispatch.  Producers may
only return ``Resolved`` when they schedule nothing else afterwards in
the same call — the marker's heap slot is claimed at yield time, so any
scheduling in between would reorder same-time records.

Failures propagate: a failed event *thrown* into a waiting generator raises
there; an unhandled failure escapes :meth:`Simulator.run` as
:class:`SimulationError`.

Defusal semantics
-----------------
A failed event must be *consumed* by someone, or the simulation stops.
Consumption marks the event **defused** (:attr:`Event.defused`):

* a :class:`Process` that receives the failure (it is thrown into the
  generator) defuses it;
* a :class:`Process` that *abandoned* the event (it was interrupted and
  the stale callback fires later) defuses it — the interrupt took
  responsibility for the wait;
* an :class:`AnyOf`/:class:`AllOf` that propagates a sub-event's failure
  as its own defuses the sub-event (the condition's failure then needs
  its own consumer);
* anything else may call :meth:`Event.defuse` explicitly.

A failure that fires with **no** consumer — even when stale callbacks
were still registered — raises :class:`SimulationError` from
:meth:`Simulator.step`.  Notably, a sub-event that fails *after* its
condition already triggered (a raced ``AnyOf``) has no consumer: the
condition ignores it, nothing defuses it, and the failure surfaces
instead of being silently swallowed.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Simulator",
    "Event",
    "Timeout",
    "Process",
    "AnyOf",
    "AllOf",
    "SimulationError",
    "Interrupt",
    "Resolved",
    "DIRECT_RESUME_DEFAULT",
    "BULK_EVENTS_DEFAULT",
]

#: module default for :class:`Simulator`'s ``direct_resume`` flag —
#: whether int yields use flattened sleep records (fast path) or build
#: legacy :class:`Timeout` events.  Both produce bit-identical runs.
DIRECT_RESUME_DEFAULT = True

#: module default for :class:`Simulator`'s ``bulk_events`` flag —
#: whether model code (the DMA/fabric hot path) may coalesce provably
#: independent per-chunk event trains into single bulk heap records.
#: Both settings produce bit-identical simulated results; bulk mode only
#: changes how many *heap records* it takes to compute them.
BULK_EVENTS_DEFAULT = True

#: upper bound on the recycled-sleep-record arena; enough to cover every
#: simultaneously queued sleep in the benchmark fleet without pinning
#: unbounded garbage on pathological workloads
_ARENA_MAX = 512

_heappush = heapq.heappush
_heappop = heapq.heappop


class SimulationError(RuntimeError):
    """An event failure that no process handled."""


class Interrupt(Exception):
    """Raised inside a process that another process interrupted.

    The interrupting party supplies ``cause`` which is carried to the
    interrupted generator.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


# Sentinels for event state
_PENDING = object()

# Sentinel stored in Process._waiting_on while the process is parked on a
# flattened sleep record (no Event exists to point at).
_SLEEP = object()


class Resolved:
    """An already-satisfied wait, cheaper than a pre-triggered Event.

    Yielding a ``Resolved`` resumes the process at the *current* time with
    ``value`` after one trip through the event heap (so same-time ordering
    against other records is preserved), without constructing an Event.
    Returned by channel/store fast paths; exposes ``triggered``/``ok``/
    ``value`` so non-yielding callers that immediately unwrap the result
    (``assert ev.triggered; ev.value``) work with either representation.
    """

    __slots__ = ("value",)

    triggered = True
    ok = True

    def __init__(self, value: Any = None):
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Resolved {self.value!r}>"


class Event:
    """A one-shot occurrence on the simulation timeline.

    An event starts *pending*.  Calling :meth:`succeed` or :meth:`fail`
    triggers it: the event is placed on the simulator heap and, when the
    clock reaches it, every registered callback runs exactly once.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        self._defused: bool = False

    # -- state ------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value and is scheduled to fire."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only meaningful once triggered."""
        return bool(self._ok)

    @property
    def value(self) -> Any:
        """The event's value (or failure exception) once triggered."""
        if self._value is _PENDING:
            raise RuntimeError("event value is not yet available")
        return self._value

    @property
    def defused(self) -> bool:
        """True once some waiter has taken responsibility for a failure."""
        return self._defused

    def defuse(self) -> None:
        """Mark this event's failure as consumed.

        A defused failure no longer escalates to :class:`SimulationError`
        when the event is processed.  Waiters that consume (or abandon) a
        failure call this automatically; call it directly only when a
        failure is intentionally ignored.
        """
        self._defused = True

    # -- triggering ---------------------------------------------------------
    def succeed(self, value: Any = None, delay: int = 0) -> "Event":
        """Trigger the event successfully with ``value`` after ``delay`` ps."""
        if self._value is not _PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        if delay == 0:
            sim = self.sim
            _heappush(sim._heap, [sim.now, sim._seq, self])
            sim._seq += 1
        else:
            self.sim._schedule(self, delay)
        return self

    def fail(self, exception: BaseException, delay: int = 0) -> "Event":
        """Trigger the event as failed with ``exception`` after ``delay`` ps."""
        if self._value is not _PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        if delay == 0:
            sim = self.sim
            _heappush(sim._heap, [sim.now, sim._seq, self])
            sim._seq += 1
        else:
            self.sim._schedule(self, delay)
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Run ``callback(event)`` when the event fires.

        If the event has already been processed the callback runs
        immediately (same-timestep semantics).
        """
        if self.callbacks is None:
            callback(self)
        else:
            self.callbacks.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = (
            "processed" if self.processed else "triggered" if self.triggered else "pending"
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` picoseconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: int, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        self.sim = sim
        self.callbacks = []
        self._defused = False
        self.delay = delay
        self._ok = True
        self._value = value
        _heappush(sim._heap, [sim.now + delay, sim._seq, self])
        sim._seq += 1


class Process(Event):
    """A running generator; also an event that fires when it returns.

    The generator yields :class:`Event` instances.  When a yielded event
    succeeds, the generator resumes with the event's value; when it fails,
    the exception is thrown into the generator.

    A generator may also yield a bare non-negative ``int`` — a pure delay
    in picoseconds (see the module docstring's *Flattened sleeps*): on the
    default fast path no Timeout is built, the process is resumed directly
    from a flattened heap record, and the generator receives ``None``
    exactly as it would from an un-valued Timeout.
    """

    __slots__ = ("_gen", "_waiting_on", "name", "_sleep_seq", "_send", "_waited")

    def __init__(self, sim: "Simulator", gen: Generator, name: str = ""):
        if not hasattr(gen, "send"):
            raise TypeError(f"Process requires a generator, got {type(gen).__name__}")
        super().__init__(sim)
        self._gen = gen
        self._waiting_on: Optional[Any] = None
        self._sleep_seq = -1
        # bound-method caches: one allocation here instead of one per step
        self._send = gen.send
        self._waited = self._process_waited
        self.name = name or getattr(gen, "__name__", "process")
        # Kick off at the current time.
        start = Event(sim)
        start._ok = True
        start._value = None
        sim._schedule(start, 0)
        start.add_callback(self._start)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return self._value is _PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        The event the process was waiting on is abandoned (its callback is
        disarmed); the process resumes immediately with the exception.
        """
        if not self.is_alive:
            raise RuntimeError(f"cannot interrupt finished process {self.name!r}")
        target = self._waiting_on
        if target is None:
            raise RuntimeError(
                f"process {self.name!r} is not waiting and cannot be interrupted"
            )
        self._waiting_on = None
        # Disarm a pending flattened sleep: its heap record carries the
        # old token and is ignored when it surfaces.
        self._sleep_seq = -1
        # Deliver via a fresh failed event so ordering goes through the heap.
        poke = Event(self.sim)
        poke._ok = False
        poke._value = Interrupt(cause)
        self.sim._schedule(poke, 0)
        poke.add_callback(self._resume_interrupt)

    # -- internal ----------------------------------------------------------
    def _resume_interrupt(self, poke: Event) -> None:
        # The interrupt machinery owns the poke's failure either way: if
        # the process already finished, the interrupt is simply moot.
        poke._defused = True
        if not self.is_alive:
            return
        self._step(throw=poke._value)

    def _start(self, _event: Event) -> None:
        self._step(send=None)

    def _step(self, send: Any = None, throw: Optional[BaseException] = None) -> None:
        try:
            if throw is not None:
                target = self._gen.throw(throw)
            else:
                target = self._send(send)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - propagate as failure
            self.fail(exc)
            return
        tt = type(target)
        if tt is int:
            # Flattened sleep.  The record allocates `seq` at exactly the
            # point a Timeout would have been constructed, so scheduling
            # order — and every simulated result — is unchanged.
            if target >= 0:
                sim = self.sim
                if sim.direct_resume:
                    seq = sim._seq
                    self._waiting_on = _SLEEP
                    self._sleep_seq = seq
                    arena = sim._arena
                    if arena:
                        rec = arena.pop()
                        rec[0] = sim.now + target
                        rec[1] = seq
                        rec[3] = self
                        rec[4] = None
                        _heappush(sim._heap, rec)
                    else:
                        _heappush(sim._heap, [sim.now + target, seq, None, self, None])
                    sim._seq = seq + 1
                    return
                target = Timeout(sim, target)
            else:
                self._gen.close()
                self.fail(ValueError(f"negative timeout delay: {target}"))
                return
        elif tt is Resolved:
            # Flattened already-satisfied wait: resume at the current
            # time with the carried value after one heap round-trip.
            sim = self.sim
            if sim.direct_resume:
                seq = sim._seq
                self._waiting_on = _SLEEP
                self._sleep_seq = seq
                arena = sim._arena
                if arena:
                    rec = arena.pop()
                    rec[0] = sim.now
                    rec[1] = seq
                    rec[3] = self
                    rec[4] = target.value
                    _heappush(sim._heap, rec)
                else:
                    _heappush(sim._heap, [sim.now, seq, None, self, target.value])
                sim._seq = seq + 1
                return
            target = Event(sim).succeed(target.value)
        elif not isinstance(target, Event):
            err = TypeError(
                f"process {self.name!r} yielded {target!r}; processes must "
                "yield Events, Resolved waits, or int delays"
            )
            self._gen.close()
            self.fail(err)
            return
        if target.sim is not self.sim:
            self._gen.close()
            self.fail(RuntimeError("yielded an event from a different simulator"))
            return
        self._waiting_on = target
        # inlined Event.add_callback (hot: once per wait)
        cb = target.callbacks
        if cb is None:
            self._waited(target)
        else:
            cb.append(self._waited)

    def _process_waited(self, event: Event) -> None:
        if self._waiting_on is not event:
            # Abandoned (interrupt): the interrupt delivered the wake-up,
            # so this waiter takes responsibility for the stale outcome.
            if not event._ok:
                event._defused = True
            return
        self._waiting_on = None
        if event._ok:
            self._step(event._value)
        else:
            event._defused = True
            self._step(throw=event._value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Process {self.name!r} alive={self.is_alive}>"


class _Condition(Event):
    """Base for AnyOf/AllOf composition events."""

    __slots__ = ("events", "_count")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = tuple(events)
        if any(e.sim is not sim for e in self.events):
            raise RuntimeError("all composed events must share one simulator")
        self._count = 0
        if not self.events:
            self.succeed(self._collect())
        else:
            for event in self.events:
                event.add_callback(self._check)

    def _collect(self) -> dict[Event, Any]:
        # Only events whose callbacks have run count as "happened";
        # Timeouts are value-bearing from creation, so `triggered` alone
        # would wrongly include the future.
        return {e: e._value for e in self.events if e.processed and e._ok}

    def _check(self, event: Event) -> None:
        raise NotImplementedError


class AnyOf(_Condition):
    """Fires when the first of its events fires.

    Succeeds with a dict ``{event: value}`` of all events triggered so far;
    fails if the first event to fire failed.
    """

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            # Raced: a sub-event fired after the condition resolved.  A
            # late failure is deliberately NOT defused here — nobody is
            # listening, so it must surface via SimulationError.
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
        else:
            self.succeed(self._collect())


class AllOf(_Condition):
    """Fires when all of its events have fired (or any fails)."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            # Same raced-late-failure policy as AnyOf: leave it live.
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._count += 1
        if self._count == len(self.events):
            self.succeed(self._collect())


class Simulator:
    """The simulation clock and event loop.

    Typical use::

        sim = Simulator()

        def worker(sim):
            yield sim.timeout(5 * NS)
            return "done"

        proc = sim.process(worker(sim))
        sim.run()
        assert proc.value == "done"
    """

    __slots__ = (
        "now",
        "_heap",
        "_seq",
        "_active",
        "direct_resume",
        "bulk_events",
        "_bulk_extra",
        "_arena",
    )

    def __init__(
        self,
        direct_resume: Optional[bool] = None,
        bulk_events: Optional[bool] = None,
    ) -> None:
        self.now: int = 0
        self._heap: list[list] = []
        self._seq: int = 0
        self._active: bool = False
        #: whether int yields use flattened sleep records (fast path) or
        #: legacy Timeout events; both are bit-identical in simulated time
        self.direct_resume: bool = (
            DIRECT_RESUME_DEFAULT if direct_resume is None else bool(direct_resume)
        )
        #: whether model code may coalesce provably independent event
        #: trains into bulk records (see :meth:`note_bulk`); both settings
        #: are bit-identical in simulated results
        self.bulk_events: bool = (
            BULK_EVENTS_DEFAULT if bulk_events is None else bool(bulk_events)
        )
        # logical events represented by bulk records but never pushed
        self._bulk_extra: int = 0
        # free-list of spent flattened-sleep records, recycled by _step
        self._arena: list[list] = []

    # -- factories ----------------------------------------------------------
    def event(self) -> Event:
        """Create an un-triggered event."""
        return Event(self)

    def timeout(self, delay: int, value: Any = None) -> Timeout:
        """Create an event firing ``delay`` ps from now."""
        return Timeout(self, delay, value)

    def process(self, gen: Generator, name: str = "") -> Process:
        """Start running ``gen`` as a process."""
        return Process(self, gen, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event combinator: first of ``events``."""
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event combinator: all of ``events``."""
        return AllOf(self, events)

    # -- engine -------------------------------------------------------------
    def _schedule(self, event: Event, delay: int = 0) -> None:
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        heapq.heappush(self._heap, [self.now + delay, self._seq, event])
        self._seq += 1

    def note_bulk(self, elided: int) -> None:
        """Record ``elided`` logical events serviced by one bulk record.

        Model code that coalesces a provably independent event train into
        a single heap record (see ``bulk_events``) calls this with the
        number of records it *didn't* push, so ``events_scheduled`` — the
        denominator for events/sec reporting — counts the same logical
        work whichever path ran.
        """
        self._bulk_extra += elided

    def step(self) -> None:
        """Process the single next record on the heap.

        A record is either ``(when, seq, event)`` — run the event's
        callbacks — or a flattened sleep ``(when, seq, None, process)`` —
        resume the process directly (if its wake token still matches;
        an interrupt may have disarmed it).
        """
        entry = _heappop(self._heap)
        when = entry[0]
        if when < self.now:  # pragma: no cover - defensive
            raise RuntimeError("event heap time went backwards")
        self.now = when
        event = entry[2]
        if event is None:
            proc = entry[3]
            seq = entry[1]
            value = entry[4]
            arena = self._arena
            if len(arena) < _ARENA_MAX:
                # drop object refs before pooling so the arena pins nothing
                entry[3] = None
                entry[4] = None
                arena.append(entry)
            if proc._sleep_seq == seq:
                proc._sleep_seq = -1
                proc._waiting_on = None
                proc._step(value)
            return
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            # Nothing consumed this failure — stale callbacks from
            # abandoned waiters do not count as handling it.
            exc = event._value
            if isinstance(exc, BaseException):
                raise SimulationError(f"unhandled event failure: {exc!r}") from exc

    def run(self, until: Optional[int] = None) -> int:
        """Run until the heap is empty or the clock passes ``until``.

        Returns the simulation time at exit.  ``until`` is an absolute
        time in picoseconds and the boundary is *inclusive*: a record
        scheduled at exactly ``until`` still fires; only records strictly
        after ``until`` are left on the heap.  The clock is left at
        ``until`` if the horizon was reached (with or without events
        still outstanding), and never moves backwards.

        The loop body is an inlined :meth:`step` (minus the defensive
        monotonicity check — the heap guarantees it): this is the hottest
        code in the repository.
        """
        if self._active:
            raise RuntimeError("simulator is already running")
        self._active = True
        heap = self._heap
        pop = _heappop
        arena = self._arena
        arena_append = arena.append
        try:
            if until is None:
                while heap:
                    entry = pop(heap)
                    self.now = entry[0]
                    event = entry[2]
                    if event is None:
                        proc = entry[3]
                        seq = entry[1]
                        value = entry[4]
                        if len(arena) < _ARENA_MAX:
                            entry[3] = None
                            entry[4] = None
                            arena_append(entry)
                        if proc._sleep_seq == seq:
                            proc._sleep_seq = -1
                            proc._waiting_on = None
                            proc._step(value)
                        continue
                    callbacks = event.callbacks
                    event.callbacks = None
                    for callback in callbacks:
                        callback(event)
                    if not event._ok and not event._defused:
                        exc = event._value
                        if isinstance(exc, BaseException):
                            raise SimulationError(
                                f"unhandled event failure: {exc!r}"
                            ) from exc
            else:
                while heap:
                    if heap[0][0] > until:
                        if until > self.now:
                            self.now = until
                        break
                    entry = pop(heap)
                    self.now = entry[0]
                    event = entry[2]
                    if event is None:
                        proc = entry[3]
                        seq = entry[1]
                        value = entry[4]
                        if len(arena) < _ARENA_MAX:
                            entry[3] = None
                            entry[4] = None
                            arena_append(entry)
                        if proc._sleep_seq == seq:
                            proc._sleep_seq = -1
                            proc._waiting_on = None
                            proc._step(value)
                        continue
                    callbacks = event.callbacks
                    event.callbacks = None
                    for callback in callbacks:
                        callback(event)
                    if not event._ok and not event._defused:
                        exc = event._value
                        if isinstance(exc, BaseException):
                            raise SimulationError(
                                f"unhandled event failure: {exc!r}"
                            ) from exc
                else:
                    if until > self.now:
                        self.now = until
        finally:
            self._active = False
        return self.now

    def schedule_at(self, when: int, value: Any = None) -> Event:
        """Schedule an already-succeeded event at absolute time ``when``.

        The relative-delay API (:meth:`timeout`, ``Event.succeed(delay=)``)
        covers model code, which always reasons forward from ``now``.  The
        partition-parallel driver (:mod:`repro.sim.parallel`) instead
        *imports* cross-partition arrivals carrying absolute timestamps
        assigned by another simulator; this is the one sanctioned way to
        re-anchor such a record on this heap.  ``when`` must not precede
        the current clock — a violation here is a causality bug, not a
        modeling choice, so it raises instead of clamping.
        """
        if when < self.now:
            raise ValueError(
                f"cannot schedule at {when} ps: clock already at {self.now} ps"
            )
        ev = Event(self)
        ev._ok = True
        ev._value = value
        self._schedule(ev, when - self.now)
        return ev

    def peek(self) -> Optional[int]:
        """Time of the next scheduled event, or None if the heap is empty."""
        return self._heap[0][0] if self._heap else None

    @property
    def events_scheduled(self) -> int:
        """Total logical events scheduled so far.

        Heap records actually pushed (events + flattened sleeps) plus the
        logical events bulk records stood in for (:meth:`note_bulk`).
        Monotonic; the denominator for wall-clock events/sec reporting
        (:mod:`repro.perf`).  Identical whichever int-yield path is in
        use (flattened sleeps allocate the same ``seq`` a Timeout would
        have) and whether or not bulk batching ran (``note_bulk`` restores
        the elided count).
        """
        return self._seq + self._bulk_extra

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Simulator t={self.now}ps queued={len(self._heap)}>"
