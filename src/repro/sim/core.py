"""Discrete-event simulation kernel.

A small, deterministic, generator-based DES engine in the style of SimPy,
written from scratch so the whole stack has no dependencies outside the
standard library and NumPy.

Model
-----
* :class:`Simulator` owns an event heap keyed by ``(time, seq)``; ``seq`` is
  a monotonically increasing tie-breaker so simultaneous events always fire
  in scheduling order — runs are bit-for-bit reproducible.
* :class:`Event` is a one-shot occurrence.  It is *triggered* when given a
  value (or failure) and scheduled, and *processed* once its callbacks have
  run.
* :class:`Process` wraps a Python generator.  The generator ``yield``\\ s
  events; the process resumes when the yielded event fires.  A process is
  itself an event that succeeds with the generator's return value, so
  processes can wait on each other (fork/join).
* :class:`Timeout` fires after a fixed delay.
* :class:`AnyOf` / :class:`AllOf` compose events.

Failures propagate: a failed event *thrown* into a waiting generator raises
there; an unhandled failure escapes :meth:`Simulator.run` as
:class:`SimulationError`.

Defusal semantics
-----------------
A failed event must be *consumed* by someone, or the simulation stops.
Consumption marks the event **defused** (:attr:`Event.defused`):

* a :class:`Process` that receives the failure (it is thrown into the
  generator) defuses it;
* a :class:`Process` that *abandoned* the event (it was interrupted and
  the stale callback fires later) defuses it — the interrupt took
  responsibility for the wait;
* an :class:`AnyOf`/:class:`AllOf` that propagates a sub-event's failure
  as its own defuses the sub-event (the condition's failure then needs
  its own consumer);
* anything else may call :meth:`Event.defuse` explicitly.

A failure that fires with **no** consumer — even when stale callbacks
were still registered — raises :class:`SimulationError` from
:meth:`Simulator.step`.  Notably, a sub-event that fails *after* its
condition already triggered (a raced ``AnyOf``) has no consumer: the
condition ignores it, nothing defuses it, and the failure surfaces
instead of being silently swallowed.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Simulator",
    "Event",
    "Timeout",
    "Process",
    "AnyOf",
    "AllOf",
    "SimulationError",
    "Interrupt",
]


class SimulationError(RuntimeError):
    """An event failure that no process handled."""


class Interrupt(Exception):
    """Raised inside a process that another process interrupted.

    The interrupting party supplies ``cause`` which is carried to the
    interrupted generator.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


# Sentinels for event state
_PENDING = object()


class Event:
    """A one-shot occurrence on the simulation timeline.

    An event starts *pending*.  Calling :meth:`succeed` or :meth:`fail`
    triggers it: the event is placed on the simulator heap and, when the
    clock reaches it, every registered callback runs exactly once.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        self._defused: bool = False

    # -- state ------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value and is scheduled to fire."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only meaningful once triggered."""
        return bool(self._ok)

    @property
    def value(self) -> Any:
        """The event's value (or failure exception) once triggered."""
        if self._value is _PENDING:
            raise RuntimeError("event value is not yet available")
        return self._value

    @property
    def defused(self) -> bool:
        """True once some waiter has taken responsibility for a failure."""
        return self._defused

    def defuse(self) -> None:
        """Mark this event's failure as consumed.

        A defused failure no longer escalates to :class:`SimulationError`
        when the event is processed.  Waiters that consume (or abandon) a
        failure call this automatically; call it directly only when a
        failure is intentionally ignored.
        """
        self._defused = True

    # -- triggering ---------------------------------------------------------
    def succeed(self, value: Any = None, delay: int = 0) -> "Event":
        """Trigger the event successfully with ``value`` after ``delay`` ps."""
        if self._value is not _PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.sim._schedule(self, delay)
        return self

    def fail(self, exception: BaseException, delay: int = 0) -> "Event":
        """Trigger the event as failed with ``exception`` after ``delay`` ps."""
        if self._value is not _PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self.sim._schedule(self, delay)
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Run ``callback(event)`` when the event fires.

        If the event has already been processed the callback runs
        immediately (same-timestep semantics).
        """
        if self.callbacks is None:
            callback(self)
        else:
            self.callbacks.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = (
            "processed" if self.processed else "triggered" if self.triggered else "pending"
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` picoseconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: int, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(sim)
        self.delay = delay
        self._ok = True
        self._value = value
        sim._schedule(self, delay)


class Process(Event):
    """A running generator; also an event that fires when it returns.

    The generator yields :class:`Event` instances.  When a yielded event
    succeeds, the generator resumes with the event's value; when it fails,
    the exception is thrown into the generator.
    """

    __slots__ = ("_gen", "_waiting_on", "name")

    def __init__(self, sim: "Simulator", gen: Generator, name: str = ""):
        if not hasattr(gen, "send"):
            raise TypeError(f"Process requires a generator, got {type(gen).__name__}")
        super().__init__(sim)
        self._gen = gen
        self._waiting_on: Optional[Event] = None
        self.name = name or getattr(gen, "__name__", "process")
        # Kick off at the current time.
        start = Event(sim)
        start._ok = True
        start._value = None
        sim._schedule(start, 0)
        start.add_callback(self._start)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return self._value is _PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        The event the process was waiting on is abandoned (its callback is
        disarmed); the process resumes immediately with the exception.
        """
        if not self.is_alive:
            raise RuntimeError(f"cannot interrupt finished process {self.name!r}")
        target = self._waiting_on
        if target is None:
            raise RuntimeError(
                f"process {self.name!r} is not waiting and cannot be interrupted"
            )
        self._waiting_on = None
        # Deliver via a fresh failed event so ordering goes through the heap.
        poke = Event(self.sim)
        poke._ok = False
        poke._value = Interrupt(cause)
        self.sim._schedule(poke, 0)
        poke.add_callback(self._resume_interrupt)

    # -- internal ----------------------------------------------------------
    def _resume_interrupt(self, poke: Event) -> None:
        # The interrupt machinery owns the poke's failure either way: if
        # the process already finished, the interrupt is simply moot.
        poke._defused = True
        if not self.is_alive:
            return
        self._step(throw=poke._value)

    def _start(self, _event: Event) -> None:
        self._step(send=None)

    def _step(self, send: Any = None, throw: Optional[BaseException] = None) -> None:
        try:
            if throw is not None:
                target = self._gen.throw(throw)
            else:
                target = self._gen.send(send)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - propagate as failure
            self.fail(exc)
            return
        if not isinstance(target, Event):
            err = TypeError(
                f"process {self.name!r} yielded {target!r}; processes must yield Events"
            )
            self._gen.close()
            self.fail(err)
            return
        if target.sim is not self.sim:
            self._gen.close()
            self.fail(RuntimeError("yielded an event from a different simulator"))
            return
        self._waiting_on = target
        target.add_callback(self._process_waited)

    def _process_waited(self, event: Event) -> None:
        if self._waiting_on is not event:
            # Abandoned (interrupt): the interrupt delivered the wake-up,
            # so this waiter takes responsibility for the stale outcome.
            if not event._ok:
                event._defused = True
            return
        self._waiting_on = None
        if event._ok:
            self._step(send=event._value)
        else:
            event._defused = True
            self._step(throw=event._value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Process {self.name!r} alive={self.is_alive}>"


class _Condition(Event):
    """Base for AnyOf/AllOf composition events."""

    __slots__ = ("events", "_count")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = tuple(events)
        if any(e.sim is not sim for e in self.events):
            raise RuntimeError("all composed events must share one simulator")
        self._count = 0
        if not self.events:
            self.succeed(self._collect())
        else:
            for event in self.events:
                event.add_callback(self._check)

    def _collect(self) -> dict[Event, Any]:
        # Only events whose callbacks have run count as "happened";
        # Timeouts are value-bearing from creation, so `triggered` alone
        # would wrongly include the future.
        return {e: e._value for e in self.events if e.processed and e._ok}

    def _check(self, event: Event) -> None:
        raise NotImplementedError


class AnyOf(_Condition):
    """Fires when the first of its events fires.

    Succeeds with a dict ``{event: value}`` of all events triggered so far;
    fails if the first event to fire failed.
    """

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            # Raced: a sub-event fired after the condition resolved.  A
            # late failure is deliberately NOT defused here — nobody is
            # listening, so it must surface via SimulationError.
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
        else:
            self.succeed(self._collect())


class AllOf(_Condition):
    """Fires when all of its events have fired (or any fails)."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            # Same raced-late-failure policy as AnyOf: leave it live.
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._count += 1
        if self._count == len(self.events):
            self.succeed(self._collect())


class Simulator:
    """The simulation clock and event loop.

    Typical use::

        sim = Simulator()

        def worker(sim):
            yield sim.timeout(5 * NS)
            return "done"

        proc = sim.process(worker(sim))
        sim.run()
        assert proc.value == "done"
    """

    __slots__ = ("now", "_heap", "_seq", "_active")

    def __init__(self) -> None:
        self.now: int = 0
        self._heap: list[tuple[int, int, Event]] = []
        self._seq: int = 0
        self._active: bool = False

    # -- factories ----------------------------------------------------------
    def event(self) -> Event:
        """Create an un-triggered event."""
        return Event(self)

    def timeout(self, delay: int, value: Any = None) -> Timeout:
        """Create an event firing ``delay`` ps from now."""
        return Timeout(self, delay, value)

    def process(self, gen: Generator, name: str = "") -> Process:
        """Start running ``gen`` as a process."""
        return Process(self, gen, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event combinator: first of ``events``."""
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event combinator: all of ``events``."""
        return AllOf(self, events)

    # -- engine -------------------------------------------------------------
    def _schedule(self, event: Event, delay: int = 0) -> None:
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        heapq.heappush(self._heap, (self.now + delay, self._seq, event))
        self._seq += 1

    def step(self) -> None:
        """Process the single next event on the heap."""
        when, _, event = heapq.heappop(self._heap)
        if when < self.now:  # pragma: no cover - defensive
            raise RuntimeError("event heap time went backwards")
        self.now = when
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            # Nothing consumed this failure — stale callbacks from
            # abandoned waiters do not count as handling it.
            exc = event._value
            if isinstance(exc, BaseException):
                raise SimulationError(f"unhandled event failure: {exc!r}") from exc

    def run(self, until: Optional[int] = None) -> int:
        """Run until the heap is empty or the clock passes ``until``.

        Returns the simulation time at exit.  ``until`` is an absolute time
        in picoseconds; the clock is left at ``until`` if the horizon was
        reached with events still outstanding.
        """
        if self._active:
            raise RuntimeError("simulator is already running")
        self._active = True
        try:
            while self._heap:
                when = self._heap[0][0]
                if until is not None and when > until:
                    self.now = until
                    break
                self.step()
            else:
                if until is not None and until > self.now:
                    self.now = until
        finally:
            self._active = False
        return self.now

    def peek(self) -> Optional[int]:
        """Time of the next scheduled event, or None if the heap is empty."""
        return self._heap[0][0] if self._heap else None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Simulator t={self.now}ps queued={len(self._heap)}>"
