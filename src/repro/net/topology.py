"""3D mesh/torus topology of the XT3 interconnect.

The SeaStar router supports a 3D torus.  Red Storm, the machine measured in
the paper, is special: its switching cabinets and cable-length limits allow
wraparound links **only in the z dimension** (section 5.1), so the topology
here takes a per-dimension wrap flag.

Nodes are identified by a dense integer id; :class:`Torus3D` converts
between ids and ``(x, y, z)`` coordinates and enumerates neighbor links.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

__all__ = ["Coord", "Torus3D"]


@dataclass(frozen=True, order=True)
class Coord:
    """A node position in the 3D grid."""

    x: int
    y: int
    z: int

    def __iter__(self) -> Iterator[int]:
        return iter((self.x, self.y, self.z))


#: Direction labels in router-port order (matches Fig. 1: X+, X-, Y+, Y-, Z+, Z-).
DIRECTIONS: tuple[str, ...] = ("x+", "x-", "y+", "y-", "z+", "z-")

_DELTAS: dict[str, tuple[int, int, int]] = {
    "x+": (1, 0, 0),
    "x-": (-1, 0, 0),
    "y+": (0, 1, 0),
    "y-": (0, -1, 0),
    "z+": (0, 0, 1),
    "z-": (0, 0, -1),
}


class Torus3D:
    """A ``dims = (nx, ny, nz)`` grid with optional wraparound per dimension.

    ``wrap=(False, False, True)`` reproduces Red Storm; ``(True,)*3`` is the
    commercial XT3 full torus.
    """

    def __init__(
        self,
        dims: tuple[int, int, int],
        wrap: tuple[bool, bool, bool] = (False, False, True),
    ):
        if any(d < 1 for d in dims):
            raise ValueError(f"all dimensions must be >= 1, got {dims}")
        self.dims = tuple(dims)
        self.wrap = tuple(wrap)

    @property
    def num_nodes(self) -> int:
        """Total node count."""
        nx, ny, nz = self.dims
        return nx * ny * nz

    # -- id <-> coordinate -------------------------------------------------
    def coord(self, node_id: int) -> Coord:
        """Coordinates of ``node_id`` (x fastest-varying)."""
        if not 0 <= node_id < self.num_nodes:
            raise ValueError(f"node id {node_id} out of range")
        nx, ny, _ = self.dims
        x = node_id % nx
        y = (node_id // nx) % ny
        z = node_id // (nx * ny)
        return Coord(x, y, z)

    def node_id(self, coord: Coord) -> int:
        """Dense id of ``coord``."""
        nx, ny, nz = self.dims
        if not (0 <= coord.x < nx and 0 <= coord.y < ny and 0 <= coord.z < nz):
            raise ValueError(f"coordinate {coord} outside {self.dims}")
        return coord.x + coord.y * nx + coord.z * nx * ny

    # -- neighborhood --------------------------------------------------------
    def neighbor(self, coord: Coord, direction: str) -> Coord | None:
        """Neighbor of ``coord`` in ``direction``, or None at a mesh edge."""
        dx, dy, dz = _DELTAS[direction]
        vals = [coord.x + dx, coord.y + dy, coord.z + dz]
        for axis in range(3):
            size = self.dims[axis]
            if vals[axis] < 0 or vals[axis] >= size:
                if self.wrap[axis] and size > 1:
                    vals[axis] %= size
                else:
                    return None
        return Coord(*vals)

    def neighbors(self, node_id: int) -> dict[str, int]:
        """Map of direction -> neighbor id for every connected port."""
        here = self.coord(node_id)
        out: dict[str, int] = {}
        for direction in DIRECTIONS:
            other = self.neighbor(here, direction)
            if other is not None and other != here:
                out[direction] = self.node_id(other)
        return out

    # -- distances -----------------------------------------------------------
    def _axis_distance(self, a: int, b: int, axis: int) -> int:
        size = self.dims[axis]
        direct = abs(b - a)
        if self.wrap[axis] and size > 1:
            return min(direct, size - direct)
        return direct

    def distance(self, src: int, dst: int) -> int:
        """Minimal hop count between two nodes under this wrap config."""
        a, b = self.coord(src), self.coord(dst)
        return sum(
            self._axis_distance(pa, pb, axis)
            for axis, (pa, pb) in enumerate(zip(a, b))
        )

    def diameter(self) -> int:
        """Largest minimal hop count over all node pairs."""
        total = 0
        for axis, size in enumerate(self.dims):
            if self.wrap[axis] and size > 1:
                total += size // 2
            else:
                total += size - 1
        return total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Torus3D(dims={self.dims}, wrap={self.wrap})"
