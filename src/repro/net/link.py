"""Link timing and reliability model.

Each SeaStar link carries 2.5 GB/s of payload per direction in 64-byte
packets and runs a 16-bit CRC with retry per packet (section 2).  The
:class:`LinkModel` turns a chunk (a run of packets) into a wire duration:
serialization at the link payload rate plus, optionally, stochastic CRC
retry penalties for fault-injection experiments.

Because the router's fixed paths pipeline packets (wormhole-style), a chunk
pays serialization once and per-hop fall-through latency per hop; that
composition happens in :mod:`repro.net.fabric`.
"""

from __future__ import annotations

import random
from typing import Optional

from ..hw.config import SeaStarConfig

__all__ = ["LinkModel"]


class LinkModel:
    """Timing/reliability calculator for one direction of a link class.

    A single instance is shared by the whole fabric since all XT3 links are
    identical; it is stateless except for the fault-injection RNG.
    """

    def __init__(self, config: SeaStarConfig, seed: Optional[int] = 0):
        self.config = config
        self._rng = random.Random(seed)
        self.packets_carried = 0
        self.retries = 0
        self.retry_time_ps = 0
        #: per-packet serialization time, hoisted out of the per-chunk
        #: path (the config is frozen, so this can never go stale)
        self.packet_time = config.link_packet_time()

    def reset(self) -> None:
        """Zero the traffic counters (``packets_carried``/``retries``).

        The counters otherwise accumulate for the life of the instance;
        harnesses that reuse a fabric across measurement phases call this
        between phases so each report covers exactly one run.
        """
        self.packets_carried = 0
        self.retries = 0
        self.retry_time_ps = 0

    def snapshot(self) -> dict[str, int]:
        """Point-in-time copy of the traffic counters."""
        return {
            "packets_carried": self.packets_carried,
            "retries": self.retries,
            "retry_time_ps": self.retry_time_ps,
        }

    def serialization_time(self, npackets: int) -> int:
        """Time (ps) to clock ``npackets`` onto the wire at link rate."""
        return npackets * self.packet_time

    def retry_penalty(self, npackets: int) -> int:
        """Stochastic extra delay from link-level CRC retries.

        Zero unless ``link_crc_retry_prob`` is set.  Retries are invisible
        above the link (the 16-bit CRC + retry protocol is reliable); they
        only add latency, which is exactly how the paper treats them.
        """
        prob = self.config.link_crc_retry_prob
        if prob <= 0.0:
            return 0
        nretries = sum(1 for _ in range(npackets) if self._rng.random() < prob)
        self.retries += nretries
        penalty = nretries * self.config.link_retry_penalty
        self.retry_time_ps += penalty
        return penalty

    def chunk_transit_time(self, npackets: int, hops: int) -> int:
        """Closed-form wire transit for one clean chunk (no retries drawn).

        Serialization at link rate plus per-hop fall-through — pure
        arithmetic with no RNG consultation and no counter side effects,
        so the TX bulk-event gate can evaluate the clean-pipe inequality
        without perturbing fault-injection state.
        """
        return npackets * self.packet_time + hops * self.config.hop_latency

    def carry(self, npackets: int, chunks: int = 1) -> None:
        """Account ``chunks`` chunks of ``npackets`` packets carried.

        The bulk-event fast path commits a whole batched train's link
        traffic in one call; the chunk-exact path is equivalent to
        ``carry(npackets)`` per chunk.
        """
        self.packets_carried += npackets * chunks

    def chunk_wire_time(self, npackets: int, hops: int) -> int:
        """Total wire time for a chunk: serialization + per-hop latency."""
        self.packets_carried += npackets
        return (
            self.serialization_time(npackets)
            + hops * self.config.hop_latency
            + self.retry_penalty(npackets)
        )
