"""The interconnect fabric: ports, in-flight windows, ordered delivery.

Model
-----
* Every node attaches one :class:`NetworkPort`.  Its ``rx`` store is the
  NIC-side receive buffering; when it fills, delivery blocks, which
  backpressures the sender's TX DMA engine — the coarse equivalent of
  wormhole/link-level flow control.
* Injection is already serialized by the sender's single TX DMA engine
  (the paper: "all transmits ... are serialized through a single TX
  FIFO"), so the fabric only adds wire time: chunk serialization at link
  rate plus per-hop fall-through latency along the fixed table-routed
  path.
* Per (src, dst) pair an in-flight window (a bounded store) caps how many
  chunks the wire holds; ``send`` returns an event that fires when the
  chunk was accepted into the window, and a per-pair delivery process
  moves chunks to the destination port strictly in order — reproducing the
  in-order delivery the fixed-path routers guarantee.

Interior-link contention is not modeled (documented in DESIGN.md): the
paper's experiments are node pairs, where injection/ejection — which we do
model — dominate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..hw.config import SeaStarConfig
from ..sim import Channel, Counters, Event, Simulator, Store
from .link import LinkModel
from .packet import WireChunk
from .routing import Router
from .topology import Torus3D

__all__ = ["Fabric", "NetworkPort"]


@dataclass
class NetworkPort:
    """A node's attachment point to the fabric."""

    node_id: int
    rx: Store
    """Arriving chunks, in order; consumed by the node's RX DMA engine."""

    stats: Counters = field(default_factory=Counters)


class _Pipe:
    """Ordered, windowed conduit for one (src, dst) pair.

    Two pipelined stages, as on real wormhole-routed links:

    * *serialization* — each chunk occupies the injection link for its
      packets' worth of link time (plus any CRC retry penalty); this is
      the stage that rate-limits the wire;
    * *flight* — the per-hop fall-through latency is pure delay: chunks
      overlap in flight, so hop latency costs latency but never
      throughput (per-packet and chunked runs agree because of this).

    Arrival stays strictly in order (fixed path, constant delay) and the
    destination's bounded rx store backpressures through both stages.
    """

    __slots__ = ("fabric", "src", "dst", "window", "hops", "_in_flight")

    def __init__(self, fabric: "Fabric", src: int, dst: int):
        self.fabric = fabric
        self.src = src
        self.dst = dst
        self.hops = fabric.router.hops(src, dst)
        self.window = Store(
            fabric.sim, capacity=fabric.window_chunks, name=f"wire:{src}->{dst}"
        )
        # bounded: the wire holds only a window's worth of chunks in
        # flight, so destination backpressure reaches the serializer and
        # from there the TX engine
        self._in_flight = Store(
            fabric.sim, capacity=fabric.window_chunks, name=f"flight:{src}->{dst}"
        )
        fabric.sim.process(self._serialize(), name=f"pipe:{src}->{dst}")
        fabric.sim.process(self._arrive(), name=f"arrive:{src}->{dst}")

    def _serialize(self):
        sim = self.fabric.sim
        link = self.fabric.link
        flight_delay = self.hops * self.fabric.config.hop_latency
        while True:
            chunk: WireChunk = yield self.window.get()
            busy = link.serialization_time(chunk.npackets) + link.retry_penalty(
                chunk.npackets
            )
            link.packets_carried += chunk.npackets
            yield sim.timeout(busy)
            yield self._in_flight.put((sim.now + flight_delay, chunk))

    def _arrive(self):
        sim = self.fabric.sim
        port = self.fabric.ports[self.dst]
        while True:
            due, chunk = yield self._in_flight.get()
            if sim.now < due:
                yield sim.timeout(due - sim.now)
            yield port.rx.put(chunk)
            port.stats.incr("chunks_received")
            port.stats.incr("packets_received", chunk.npackets)
            self.fabric.counters.incr("chunks_delivered")


class Fabric:
    """The whole interconnect: topology + routing + live transport state."""

    #: default wire-side buffering budgets, in bytes — chosen to match
    #: the SeaStar's FIFO depth scale.  Expressed in bytes (not chunks!)
    #: so the simulation granularity (``chunk_bytes``) does not change
    #: the physical buffering, keeping per-packet and chunked runs
    #: equivalent (tests/test_chunking_fidelity.py).
    WINDOW_BYTES = 16 * 1024
    RX_BUFFER_BYTES = 16 * 1024

    def __init__(
        self,
        sim: Simulator,
        topology: Torus3D,
        config: SeaStarConfig,
        *,
        window_chunks: int | None = None,
        rx_buffer_chunks: int | None = None,
        seed: int = 0,
    ):
        self.sim = sim
        self.topology = topology
        self.config = config
        self.router = Router(topology)
        self.link = LinkModel(config, seed=seed)
        if window_chunks is None:
            window_chunks = max(2, self.WINDOW_BYTES // config.chunk_bytes)
        if rx_buffer_chunks is None:
            rx_buffer_chunks = max(2, self.RX_BUFFER_BYTES // config.chunk_bytes)
        if window_chunks < 1 or rx_buffer_chunks < 1:
            raise ValueError("window and buffer depths must be >= 1")
        self.window_chunks = window_chunks
        self.rx_buffer_chunks = rx_buffer_chunks
        self.ports: dict[int, NetworkPort] = {}
        self._pipes: dict[tuple[int, int], _Pipe] = {}
        self.counters = Counters()

    def attach(self, node_id: int) -> NetworkPort:
        """Create (or return) the port for ``node_id``."""
        if node_id in self.ports:
            return self.ports[node_id]
        if not 0 <= node_id < self.topology.num_nodes:
            raise ValueError(f"node id {node_id} outside topology")
        port = NetworkPort(
            node_id=node_id,
            rx=Store(self.sim, capacity=self.rx_buffer_chunks, name=f"rx:{node_id}"),
        )
        self.ports[node_id] = port
        return port

    def send(self, chunk: WireChunk) -> Event:
        """Hand ``chunk`` to the wire.

        Returns an event that fires once the chunk is accepted into the
        (src, dst) in-flight window; the sender's TX engine must wait on it
        so that receiver backpressure propagates to the transmit side.
        """
        if chunk.dst not in self.ports:
            raise KeyError(f"destination node {chunk.dst} is not attached")
        key = (chunk.src, chunk.dst)
        pipe = self._pipes.get(key)
        if pipe is None:
            pipe = _Pipe(self, chunk.src, chunk.dst)
            self._pipes[key] = pipe
        self.counters.incr("chunks_sent")
        self.counters.incr("packets_sent", chunk.npackets)
        return pipe.window.put(chunk)

    def hops(self, src: int, dst: int) -> int:
        """Hop count of the fixed path between two attached nodes."""
        return self.router.hops(src, dst)
