"""The interconnect fabric: ports, in-flight windows, ordered delivery.

Model
-----
* Every node attaches one :class:`NetworkPort`.  Its ``rx`` store is the
  NIC-side receive buffering; when it fills, delivery blocks, which
  backpressures the sender's TX DMA engine — the coarse equivalent of
  wormhole/link-level flow control.
* Injection is already serialized by the sender's single TX DMA engine
  (the paper: "all transmits ... are serialized through a single TX
  FIFO"), so the fabric only adds wire time: chunk serialization at link
  rate plus per-hop fall-through latency along the fixed table-routed
  path.
* Per (src, dst) pair an in-flight window (a bounded store) caps how many
  chunks the wire holds; ``send`` returns an event that fires when the
  chunk was accepted into the window, and a per-pair delivery process
  moves chunks to the destination port strictly in order — reproducing the
  in-order delivery the fixed-path routers guarantee.

Interior-link contention is not modeled (documented in DESIGN.md): the
paper's experiments are node pairs, where injection/ejection — which we do
model — dominate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Optional

from ..hw.config import SeaStarConfig
from ..sim import Channel, Counters, Event, Simulator, Store

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..faults.injector import FaultInjector
from .link import LinkModel
from .packet import WireChunk
from .routing import Router
from .topology import Torus3D

__all__ = ["Fabric", "NetworkPort"]

#: chunk.meta key set by the fault injector on damaged payloads; kept as
#: a literal here (rather than imported) because ``repro.faults``
#: imports the firmware, which imports this module
CRC_CORRUPT = "crc_corrupt"


@dataclass
class NetworkPort:
    """A node's attachment point to the fabric."""

    node_id: int
    rx: Store
    """Arriving chunks, in order; consumed by the node's RX DMA engine."""

    stats: Counters = field(default_factory=Counters)

    on_transport_error: Optional[Callable[[object, str], None]] = None
    """Fault-injection hook: called by the pipe's reassembly stage when a
    message fails its end-to-end CRC or arrives with chunks missing.
    Receives ``(header_or_None, reason)`` where reason is ``"corrupt"``
    or ``"loss"``.  Wired to the node's firmware; unused (and never
    called) on a fabric without an injector."""

    rx_engine: Any = None
    """Back-reference to the node's :class:`~repro.hw.dma.RxDmaEngine`
    (set by the engine itself at construction).  The TX-side bulk-event
    fast path consults it to prove the receive side is quiescent and to
    commit the receiver's share of a batched chunk train."""


class _Pipe:
    """Ordered, windowed conduit for one (src, dst) pair.

    Two pipelined stages, as on real wormhole-routed links:

    * *serialization* — each chunk occupies the injection link for its
      packets' worth of link time (plus any CRC retry penalty); this is
      the stage that rate-limits the wire;
    * *flight* — the per-hop fall-through latency is pure delay: chunks
      overlap in flight, so hop latency costs latency but never
      throughput (per-packet and chunked runs agree because of this).

    Arrival stays strictly in order (fixed path, constant delay) and the
    destination's bounded rx store backpressures through both stages.
    """

    __slots__ = (
        "fabric",
        "src",
        "dst",
        "window",
        "hops",
        "m_busy",
        "m_hop_traversals",
        "_in_flight",
        "_rb_msg",
        "_rb_chunks",
        "_rb_expect",
        "_rb_bad",
    )

    def __init__(self, fabric: "Fabric", src: int, dst: int):
        self.fabric = fabric
        self.src = src
        self.dst = dst
        self.hops = fabric.router.hops(src, dst)
        # pipes are created lazily at first send, after the builder has
        # attached any metrics registry to the fabric
        metrics = fabric.metrics
        self.m_busy = (
            metrics.timeline(f"wire.{src}->{dst}.busy")
            if metrics is not None else None
        )
        self.m_hop_traversals = (
            metrics.counter(f"wire.{src}->{dst}.hop_traversals")
            if metrics is not None else None
        )
        # store-and-forward reassembly state, used only when a fault
        # injector is attached (the end-to-end CRC verdict needs the
        # whole message before anything reaches the RX engine)
        self._rb_msg: int | None = None
        self._rb_chunks: list[WireChunk] = []
        self._rb_expect = 0
        self._rb_bad: str | None = None
        self.window = Store(
            fabric.sim, capacity=fabric.window_chunks, name=f"wire:{src}->{dst}"
        )
        # bounded: the wire holds only a window's worth of chunks in
        # flight, so destination backpressure reaches the serializer and
        # from there the TX engine
        self._in_flight = Store(
            fabric.sim, capacity=fabric.window_chunks, name=f"flight:{src}->{dst}"
        )
        fabric.sim.process(self._serialize(), name=f"pipe:{src}->{dst}")
        fabric.sim.process(self._arrive(), name=f"arrive:{src}->{dst}")

    def _serialize(self):
        fabric = self.fabric
        sim = fabric.sim
        link = fabric.link
        injector = fabric.injector
        flight_delay = self.hops * fabric.config.hop_latency
        # hoisted per-chunk arithmetic: the per-packet link time is a
        # config constant (memoized on the LinkModel) and the CRC-retry
        # RNG is only consulted when retries are actually enabled
        packet_time = link.packet_time
        crc_retries = fabric.config.link_crc_retry_prob > 0.0
        window_get = self.window.get
        in_flight_put = self._in_flight.put
        while True:
            chunk: WireChunk = yield window_get()
            if injector is not None:
                # link outage (STALL mode): traffic parks at the
                # serializer until the window — or a chain of windows —
                # has passed
                stall = injector.stall_until(self.src, self.dst)
                while stall is not None and stall > sim.now:
                    wait = stall - sim.now
                    yield wait
                    injector.note_stall(wait)
                    stall = injector.stall_until(self.src, self.dst)
            # serialization and retry computed separately so the span can
            # attribute them — the RNG is consulted exactly once per
            # chunk, and only on fault-injection runs
            npackets = chunk.npackets
            ser = npackets * packet_time
            retry = link.retry_penalty(npackets) if crc_retries else 0
            busy = ser + retry
            link.packets_carried += npackets
            tracer = fabric.tracer
            span = (
                tracer.begin("wire.serialize", node=self.src, component="wire",
                             msg_id=chunk.msg_id, npackets=npackets,
                             serialize_ps=ser, retry_ps=retry)
                if tracer is not None else None
            )
            yield busy
            if self.m_busy is not None:
                self.m_busy.add(sim.now - busy, sim.now)
                self.m_hop_traversals.incr(self.hops)
            if tracer is not None:
                tracer.end(span)
            if injector is not None and not injector.chunk_fate(chunk):
                # dropped on the wire: it burned serialization time but
                # never reaches the destination
                fabric.counters.incr("chunks_dropped")
                continue
            yield in_flight_put((sim.now + flight_delay, chunk))

    def _arrive(self):
        fabric = self.fabric
        sim = fabric.sim
        port = fabric.ports[self.dst]
        injector = fabric.injector
        in_flight_get = self._in_flight.get
        rx_put = port.rx.put
        port_counts = port.stats.counts()
        fabric_counts = fabric.counters.counts()
        while True:
            due, chunk = yield in_flight_get()
            tracer = fabric.tracer
            span = (
                tracer.begin("wire.flight", node=self.src, component="flight",
                             msg_id=chunk.msg_id, hops=self.hops)
                if tracer is not None else None
            )
            if sim.now < due:
                yield due - sim.now
            if tracer is not None:
                tracer.end(span)
            if injector is None:
                yield rx_put(chunk)
                port_counts["chunks_received"] += 1
                port_counts["packets_received"] += chunk.npackets
                fabric_counts["chunks_delivered"] += 1
            else:
                yield from self._reassemble(chunk, port, injector)

    # -- fault-injection reassembly (injector attached only) -----------
    def _reassemble(self, chunk: WireChunk, port: NetworkPort, injector):
        """Store-and-forward one chunk; deliver or refuse whole messages.

        Models the end-to-end 32-bit CRC: the receiving NIC can only
        pass verdict on a complete message, so chunks buffer here and a
        clean train is released to the port in one burst.  A corrupt
        chunk, a sequence gap (an earlier chunk was dropped), or a new
        message superseding an unfinished one (tail loss) poisons the
        train: nothing is delivered and the firmware is told via
        ``port.on_transport_error`` so it can NAK the sender.
        """
        if self._rb_msg is not None and chunk.msg_id != self._rb_msg:
            # previous message never saw its last chunk: tail loss
            yield from self._rb_finish(port, injector, "loss")
        if self._rb_msg is None:
            self._rb_msg = chunk.msg_id
            self._rb_chunks = []
            self._rb_expect = 0
            self._rb_bad = None
        if chunk.seq != self._rb_expect and self._rb_bad is None:
            self._rb_bad = "loss"
        self._rb_expect = chunk.seq + 1
        if chunk.meta.get(CRC_CORRUPT) and self._rb_bad is None:
            self._rb_bad = "corrupt"
        self._rb_chunks.append(chunk)
        if chunk.is_last:
            yield from self._rb_finish(port, injector, self._rb_bad)

    def _rb_finish(self, port: NetworkPort, injector, bad: str | None):
        chunks = self._rb_chunks
        self._rb_msg = None
        self._rb_chunks = []
        self._rb_expect = 0
        self._rb_bad = None
        if bad is None:
            for c in chunks:
                yield port.rx.put(c)
                port.stats.incr("chunks_received")
                port.stats.incr("packets_received", c.npackets)
                self.fabric.counters.incr("chunks_delivered")
            return
        injector.counters.incr(f"messages_refused_{bad}")
        header = chunks[0].header if chunks and chunks[0].is_header else None
        if port.on_transport_error is not None:
            port.on_transport_error(header, bad)
        else:  # no firmware hook: the loss is invisible end to end
            injector.counters.incr("unreported_refusals")


class Fabric:
    """The whole interconnect: topology + routing + live transport state."""

    #: default wire-side buffering budgets, in bytes — chosen to match
    #: the SeaStar's FIFO depth scale.  Expressed in bytes (not chunks!)
    #: so the simulation granularity (``chunk_bytes``) does not change
    #: the physical buffering, keeping per-packet and chunked runs
    #: equivalent (tests/test_chunking_fidelity.py).
    WINDOW_BYTES = 16 * 1024
    RX_BUFFER_BYTES = 16 * 1024

    def __init__(
        self,
        sim: Simulator,
        topology: Torus3D,
        config: SeaStarConfig,
        *,
        window_chunks: int | None = None,
        rx_buffer_chunks: int | None = None,
        seed: int = 0,
        injector: "FaultInjector | None" = None,
    ):
        self.sim = sim
        self.topology = topology
        self.config = config
        self.router = Router(topology)
        self.link = LinkModel(config, seed=seed)
        #: optional fault injector; None (the default and the state for
        #: every performance run) leaves all fast paths untouched
        self.injector = injector
        if window_chunks is None:
            window_chunks = max(2, self.WINDOW_BYTES // config.chunk_bytes)
        if rx_buffer_chunks is None:
            rx_buffer_chunks = max(2, self.RX_BUFFER_BYTES // config.chunk_bytes)
        if window_chunks < 1 or rx_buffer_chunks < 1:
            raise ValueError("window and buffer depths must be >= 1")
        self.window_chunks = window_chunks
        self.rx_buffer_chunks = rx_buffer_chunks
        self.ports: dict[int, NetworkPort] = {}
        self._pipes: dict[tuple[int, int], _Pipe] = {}
        self.counters = Counters()
        self.tracer = None
        """Optional machine-wide :class:`~repro.sim.SpanTracer` consulted
        by the pipes for wire-stage spans (set by the machine builder)."""
        self.metrics = None
        """Optional :class:`~repro.metrics.MetricsRegistry`; when set (by
        the machine builder, before any traffic) each pipe registers a
        wire busy timeline and hop-traversal counter."""

    def attach(self, node_id: int) -> NetworkPort:
        """Create (or return) the port for ``node_id``."""
        if node_id in self.ports:
            return self.ports[node_id]
        if not 0 <= node_id < self.topology.num_nodes:
            raise ValueError(f"node id {node_id} outside topology")
        port = NetworkPort(
            node_id=node_id,
            rx=Store(self.sim, capacity=self.rx_buffer_chunks, name=f"rx:{node_id}"),
        )
        self.ports[node_id] = port
        return port

    def send(self, chunk: WireChunk) -> Event:
        """Hand ``chunk`` to the wire.

        Returns an event that fires once the chunk is accepted into the
        (src, dst) in-flight window; the sender's TX engine must wait on it
        so that receiver backpressure propagates to the transmit side.
        """
        pipe = self._pipes.get((chunk.src, chunk.dst))
        if pipe is None:
            if chunk.dst not in self.ports:
                raise KeyError(f"destination node {chunk.dst} is not attached")
            pipe = _Pipe(self, chunk.src, chunk.dst)
            self._pipes[(chunk.src, chunk.dst)] = pipe
        counts = self.counters.counts()
        counts["chunks_sent"] += 1
        counts["packets_sent"] += chunk.npackets
        return pipe.window.put(chunk)

    def hops(self, src: int, dst: int) -> int:
        """Hop count of the fixed path between two attached nodes."""
        return self.router.hops(src, dst)
