"""Wire-level message representation.

The SeaStar router moves fixed 64-byte packets; simulating 8 MB transfers
packet-by-packet would cost ~131k events per message, so the fabric moves
**chunks** — runs of consecutive packets belonging to one message — whose
durations are computed from per-packet costs (see
``SeaStarConfig.chunk_bytes``).  A chunk with ``seq == 0`` carries the
message header (and any piggybacked small payload); subsequent chunks carry
payload ranges as zero-copy references into the sender's buffer.

In-order, fixed-path delivery means a message's chunks always arrive in
``seq`` order, which the receive logic asserts.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = ["WireChunk", "chunk_message", "next_message_id", "bulk_run_end"]

_msg_counter = itertools.count(1)


def next_message_id() -> int:
    """Globally unique wire message id (monotonic)."""
    return next(_msg_counter)


@dataclass(eq=False, slots=True)
class WireChunk:
    """A contiguous run of packets of one message on the wire.

    Attributes
    ----------
    msg_id:
        Wire message identifier; all chunks of one message share it.
    src, dst:
        Source and destination node ids.
    seq:
        Chunk sequence number within the message; 0 is the header chunk.
    npackets:
        Number of 64-byte packets this chunk represents (>= 1).
    nbytes:
        Payload bytes carried (0 for a bare header chunk).
    is_header / is_last:
        Message framing flags.  A single-chunk message has both set.
    header:
        The Portals wire header object (header chunks only).
    payload:
        Zero-copy reference (e.g. a NumPy view) to this chunk's payload
        range in the sender's buffer, or None.
    payload_offset:
        Offset of this chunk's payload within the message body.
    """

    msg_id: int
    src: int
    dst: int
    seq: int
    npackets: int
    nbytes: int
    is_header: bool
    is_last: bool
    header: Any = None
    payload: Any = None
    payload_offset: int = 0
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.npackets < 1:
            raise ValueError("a chunk carries at least one packet")
        if self.seq == 0 and not self.is_header:
            raise ValueError("chunk 0 must be the header chunk")


def bulk_run_end(chunks: list[WireChunk], start: int) -> int:
    """Exclusive end of the identical-cost run beginning at ``start``.

    A run is a maximal stretch of chunks sharing one ``npackets`` — the
    unit whose per-chunk event trains the TX bulk path may coalesce,
    since every chunk in it has the same closed-form DMA/wire/deposit
    cost.  By construction (:func:`chunk_message`) payload chunks are
    full-size except possibly the message's final one, so a run breaks
    at most once, at the message tail.
    """
    npackets = chunks[start].npackets
    end = start + 1
    n = len(chunks)
    while end < n and chunks[end].npackets == npackets:
        end += 1
    return end


def chunk_message(
    *,
    src: int,
    dst: int,
    header: Any,
    body_bytes: int,
    payload: Any = None,
    packet_bytes: int,
    chunk_bytes: int,
    inline_bytes: int = 0,
    msg_id: Optional[int] = None,
) -> list[WireChunk]:
    """Split one message into wire chunks.

    ``body_bytes`` is the payload carried in dedicated payload packets
    (i.e. excluding any bytes piggybacked in the header packet, which the
    caller accounts for via ``inline_bytes`` purely for bookkeeping).
    ``payload`` must support slicing if ``body_bytes > 0``.
    """
    if body_bytes < 0:
        raise ValueError("body_bytes must be >= 0")
    if chunk_bytes < packet_bytes or chunk_bytes % packet_bytes:
        raise ValueError("chunk_bytes must be a positive multiple of packet_bytes")
    mid = next_message_id() if msg_id is None else msg_id
    chunks: list[WireChunk] = [
        WireChunk(
            msg_id=mid,
            src=src,
            dst=dst,
            seq=0,
            npackets=1,
            nbytes=inline_bytes,
            is_header=True,
            is_last=body_bytes == 0,
            header=header,
        )
    ]
    offset = 0
    seq = 1
    # payload chunks are built via __new__ + direct stores: an 8 MB
    # message is 8k chunks, and the dataclass kwargs/__post_init__ path
    # costs more than the rest of this loop combined.  Every invariant
    # __post_init__ checks holds by construction here (npk >= 1, seq > 0).
    new = WireChunk.__new__
    append = chunks.append
    while offset < body_bytes:
        take = min(chunk_bytes, body_bytes - offset)
        c = new(WireChunk)
        c.msg_id = mid
        c.src = src
        c.dst = dst
        c.seq = seq
        c.npackets = -(-take // packet_bytes)
        c.nbytes = take
        c.is_header = False
        c.is_last = offset + take >= body_bytes
        c.header = None
        c.payload = payload[offset : offset + take] if payload is not None else None
        c.payload_offset = offset
        c.meta = {}
        append(c)
        offset += take
        seq += 1
    return chunks
