"""Table-based dimension-ordered routing.

The SeaStar uses table-based routers giving **a fixed path between every
pair of nodes**, which is what guarantees in-order packet delivery
(section 2).  We reproduce that structure: every node owns a
:class:`RouteTable` mapping destination -> output port, built once, and a
path is obtained by walking the tables hop by hop exactly as a packet
would.  Dimension-ordered (x, then y, then z) routing fills the tables.
"""

from __future__ import annotations

from .topology import Coord, Torus3D

__all__ = ["RouteTable", "Router", "build_route_tables", "route_path"]


class RouteTable:
    """Per-node forwarding table: destination node id -> direction string.

    A destination equal to the owning node maps to ``"local"``.
    """

    __slots__ = ("node_id", "_table")

    def __init__(self, node_id: int, table: dict[int, str]):
        self.node_id = node_id
        self._table = table

    def port_for(self, dst: int) -> str:
        """Output direction for traffic to ``dst``."""
        try:
            return self._table[dst]
        except KeyError:
            raise KeyError(f"node {self.node_id} has no route to {dst}") from None

    def __len__(self) -> int:
        return len(self._table)


def _step_toward(topo: Torus3D, here: Coord, dst: Coord) -> str:
    """Next direction under dimension-ordered (x, y, z) routing."""
    for axis, name in ((0, "x"), (1, "y"), (2, "z")):
        a = (here.x, here.y, here.z)[axis]
        b = (dst.x, dst.y, dst.z)[axis]
        if a == b:
            continue
        size = topo.dims[axis]
        if topo.wrap[axis] and size > 1:
            forward = (b - a) % size
            backward = (a - b) % size
            positive = forward <= backward
        else:
            positive = b > a
        return f"{name}{'+' if positive else '-'}"
    return "local"


def build_route_tables(topo: Torus3D) -> dict[int, RouteTable]:
    """Construct the full set of per-node forwarding tables."""
    tables: dict[int, RouteTable] = {}
    for node in range(topo.num_nodes):
        here = topo.coord(node)
        entries = {
            dst: _step_toward(topo, here, topo.coord(dst))
            for dst in range(topo.num_nodes)
        }
        tables[node] = RouteTable(node, entries)
    return tables


def route_path(
    topo: Torus3D, tables: dict[int, RouteTable], src: int, dst: int
) -> list[int]:
    """Walk the tables from ``src`` to ``dst``; returns the node sequence.

    The returned list starts at ``src`` and ends at ``dst``; its length
    minus one is the hop count.  Raises if the tables loop (which would be
    a routing bug the tests guard against).
    """
    path = [src]
    here = src
    limit = topo.num_nodes + 1
    while here != dst:
        direction = tables[here].port_for(dst)
        if direction == "local":  # pragma: no cover - defensive
            raise RuntimeError(f"route table at {here} claims {dst} is local")
        nxt_coord = topo.neighbor(topo.coord(here), direction)
        if nxt_coord is None:  # pragma: no cover - defensive
            raise RuntimeError(f"route from {here} via {direction} leaves the mesh")
        here = topo.node_id(nxt_coord)
        path.append(here)
        if len(path) > limit:  # pragma: no cover - defensive
            raise RuntimeError(f"routing loop between {src} and {dst}")
    return path


class Router:
    """Convenience wrapper bundling a topology with its route tables.

    Tables are materialized lazily per node: a Red Storm-sized machine
    (10k+ nodes) would otherwise need ~10^8 table entries before the
    first packet moves.  Lazily-built tables are identical to what
    :func:`build_route_tables` produces (tests assert this).
    """

    def __init__(self, topo: Torus3D):
        self.topo = topo
        self._tables: dict[int, RouteTable] = {}
        self._hops_cache: dict[tuple[int, int], int] = {}

    def table(self, node: int) -> RouteTable:
        """The forwarding table at ``node`` (built on first use)."""
        cached = self._tables.get(node)
        if cached is None:
            here = self.topo.coord(node)
            entries = {
                dst: _step_toward(self.topo, here, self.topo.coord(dst))
                for dst in range(self.topo.num_nodes)
            }
            cached = RouteTable(node, entries)
            self._tables[node] = cached
        return cached

    def path(self, src: int, dst: int) -> list[int]:
        """Node sequence from ``src`` to ``dst`` (inclusive), walking the
        per-node tables exactly as a packet would."""
        path = [src]
        here = src
        limit = self.topo.num_nodes + 1
        while here != dst:
            direction = self.table(here).port_for(dst)
            nxt = self.topo.neighbor(self.topo.coord(here), direction)
            if nxt is None:  # pragma: no cover - defensive
                raise RuntimeError(f"route from {here} via {direction} exits mesh")
            here = self.topo.node_id(nxt)
            path.append(here)
            if len(path) > limit:  # pragma: no cover - defensive
                raise RuntimeError(f"routing loop between {src} and {dst}")
        return path

    def hops(self, src: int, dst: int) -> int:
        """Hop count of the fixed path between ``src`` and ``dst``."""
        key = (src, dst)
        cached = self._hops_cache.get(key)
        if cached is None:
            cached = len(self.path(src, dst)) - 1
            self._hops_cache[key] = cached
        return cached
