"""Table-based dimension-ordered routing.

The SeaStar uses table-based routers giving **a fixed path between every
pair of nodes**, which is what guarantees in-order packet delivery
(section 2).  We reproduce that structure: every node owns a
:class:`RouteTable` mapping destination -> output port, built once, and a
path is obtained by walking the tables hop by hop exactly as a packet
would.  Dimension-ordered (x, then y, then z) routing fills the tables.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from .topology import Coord, Torus3D

__all__ = [
    "RouteTable",
    "Router",
    "build_route_tables",
    "route_path",
    "axis_span_hops",
    "slab_cut_hops",
    "min_cut_hops",
]


class RouteTable:
    """Per-node forwarding table: destination node id -> direction string.

    A destination equal to the owning node maps to ``"local"``.
    """

    __slots__ = ("node_id", "_table")

    def __init__(self, node_id: int, table: dict[int, str]):
        self.node_id = node_id
        self._table = table

    def port_for(self, dst: int) -> str:
        """Output direction for traffic to ``dst``."""
        try:
            return self._table[dst]
        except KeyError:
            raise KeyError(f"node {self.node_id} has no route to {dst}") from None

    def __len__(self) -> int:
        return len(self._table)


def _step_toward(topo: Torus3D, here: Coord, dst: Coord) -> str:
    """Next direction under dimension-ordered (x, y, z) routing."""
    for axis, name in ((0, "x"), (1, "y"), (2, "z")):
        a = (here.x, here.y, here.z)[axis]
        b = (dst.x, dst.y, dst.z)[axis]
        if a == b:
            continue
        size = topo.dims[axis]
        if topo.wrap[axis] and size > 1:
            forward = (b - a) % size
            backward = (a - b) % size
            positive = forward <= backward
        else:
            positive = b > a
        return f"{name}{'+' if positive else '-'}"
    return "local"


def build_route_tables(topo: Torus3D) -> dict[int, RouteTable]:
    """Construct the full set of per-node forwarding tables."""
    tables: dict[int, RouteTable] = {}
    for node in range(topo.num_nodes):
        here = topo.coord(node)
        entries = {
            dst: _step_toward(topo, here, topo.coord(dst))
            for dst in range(topo.num_nodes)
        }
        tables[node] = RouteTable(node, entries)
    return tables


def route_path(
    topo: Torus3D, tables: dict[int, RouteTable], src: int, dst: int
) -> list[int]:
    """Walk the tables from ``src`` to ``dst``; returns the node sequence.

    The returned list starts at ``src`` and ends at ``dst``; its length
    minus one is the hop count.  Raises if the tables loop (which would be
    a routing bug the tests guard against).
    """
    path = [src]
    here = src
    limit = topo.num_nodes + 1
    while here != dst:
        direction = tables[here].port_for(dst)
        if direction == "local":  # pragma: no cover - defensive
            raise RuntimeError(f"route table at {here} claims {dst} is local")
        nxt_coord = topo.neighbor(topo.coord(here), direction)
        if nxt_coord is None:  # pragma: no cover - defensive
            raise RuntimeError(f"route from {here} via {direction} leaves the mesh")
        here = topo.node_id(nxt_coord)
        path.append(here)
        if len(path) > limit:  # pragma: no cover - defensive
            raise RuntimeError(f"routing loop between {src} and {dst}")
    return path


class Router:
    """Convenience wrapper bundling a topology with its route tables.

    Tables are materialized lazily per node: a Red Storm-sized machine
    (10k+ nodes) would otherwise need ~10^8 table entries before the
    first packet moves.  Lazily-built tables are identical to what
    :func:`build_route_tables` produces (tests assert this).
    """

    def __init__(self, topo: Torus3D):
        self.topo = topo
        self._tables: dict[int, RouteTable] = {}
        self._hops_cache: dict[tuple[int, int], int] = {}

    def table(self, node: int) -> RouteTable:
        """The forwarding table at ``node`` (built on first use)."""
        cached = self._tables.get(node)
        if cached is None:
            here = self.topo.coord(node)
            entries = {
                dst: _step_toward(self.topo, here, self.topo.coord(dst))
                for dst in range(self.topo.num_nodes)
            }
            cached = RouteTable(node, entries)
            self._tables[node] = cached
        return cached

    def path(self, src: int, dst: int) -> list[int]:
        """Node sequence from ``src`` to ``dst`` (inclusive), walking the
        per-node tables exactly as a packet would."""
        path = [src]
        here = src
        limit = self.topo.num_nodes + 1
        while here != dst:
            direction = self.table(here).port_for(dst)
            nxt = self.topo.neighbor(self.topo.coord(here), direction)
            if nxt is None:  # pragma: no cover - defensive
                raise RuntimeError(f"route from {here} via {direction} exits mesh")
            here = self.topo.node_id(nxt)
            path.append(here)
            if len(path) > limit:  # pragma: no cover - defensive
                raise RuntimeError(f"routing loop between {src} and {dst}")
        return path

    def hops(self, src: int, dst: int) -> int:
        """Hop count of the fixed path between ``src`` and ``dst``."""
        key = (src, dst)
        cached = self._hops_cache.get(key)
        if cached is None:
            cached = len(self.path(src, dst)) - 1
            self._hops_cache[key] = cached
        return cached


# -- partition-cut geometry --------------------------------------------------
# The conservative parallel driver (repro.sim.parallel) partitions a
# machine into slabs of full coordinate planes along one axis and needs,
# for every partition pair, the minimum dimension-ordered-route hop count
# any cross-partition message can take: that minimum times the per-hop
# link latency is the lookahead that lets partitions advance safely.
# Dimension-ordered routes are minimal (len(path)-1 == topo.distance;
# tests/test_net_routing.py asserts this on the full Red Storm geometry),
# so the cut cost reduces to coordinate distance along the slab axis —
# two full planes always contain a node pair agreeing on every other
# axis.


def axis_span_hops(
    topo: Torus3D, axis: int, coords_a: Iterable[int], coords_b: Iterable[int]
) -> int:
    """Minimum per-axis hop distance between two sets of coordinate values.

    Honors the axis's wrap flag exactly as :meth:`Torus3D.distance` does.
    Coordinate sets are small (bounded by the axis extent), so the exact
    min over the cross product is cheap and closed-form-free.
    """
    if axis not in (0, 1, 2):
        raise ValueError(f"axis must be 0, 1 or 2, got {axis}")
    size = topo.dims[axis]
    wrap = topo.wrap[axis] and size > 1
    best: int | None = None
    for a in coords_a:
        for b in coords_b:
            d = abs(a - b)
            if wrap:
                d = min(d, size - d)
            if best is None or d < best:
                best = d
    if best is None:
        raise ValueError("coordinate sets must be non-empty")
    return best


def slab_cut_hops(
    topo: Torus3D, axis: int, ranges: Sequence[tuple[int, int]]
) -> list[list[int]]:
    """Pairwise minimum route hops between axis-aligned slab partitions.

    ``ranges`` holds half-open ``[lo, hi)`` coordinate intervals along
    ``axis``; each slab is the set of full planes at those coordinates.
    Returns the symmetric matrix ``H`` with ``H[i][j]`` the minimum hop
    count of any dimension-ordered route from slab ``i`` to slab ``j``
    (0 on the diagonal).
    """
    spans = [list(range(lo, hi)) for lo, hi in ranges]
    for (lo, hi), span in zip(ranges, spans):
        if not span:
            raise ValueError(f"empty slab range [{lo}, {hi})")
    n = len(spans)
    out = [[0] * n for _ in range(n)]
    for i in range(n):
        for j in range(i + 1, n):
            hops = axis_span_hops(topo, axis, spans[i], spans[j])
            out[i][j] = hops
            out[j][i] = hops
    return out


def min_cut_hops(
    topo: Torus3D, nodes_a: Iterable[int], nodes_b: Iterable[int]
) -> int:
    """Exact minimum route hops between two arbitrary node sets.

    Brute force over the cross product via :meth:`Torus3D.distance` —
    quadratic, so only for small topologies; the property suite uses it
    to cross-check :func:`slab_cut_hops` on random tori.
    """
    best: int | None = None
    nodes_b = list(nodes_b)
    for a in nodes_a:
        for b in nodes_b:
            d = topo.distance(a, b)
            if best is None or d < best:
                best = d
    if best is None:
        raise ValueError("node sets must be non-empty")
    return best
