"""The XT3 interconnect substrate: topology, routing, links, fabric."""

from .fabric import Fabric, NetworkPort
from .link import LinkModel
from .packet import WireChunk, chunk_message, next_message_id
from .routing import (
    Router,
    RouteTable,
    axis_span_hops,
    build_route_tables,
    min_cut_hops,
    route_path,
    slab_cut_hops,
)
from .topology import Coord, Torus3D

__all__ = [
    "Torus3D",
    "Coord",
    "Router",
    "RouteTable",
    "build_route_tables",
    "route_path",
    "axis_span_hops",
    "slab_cut_hops",
    "min_cut_hops",
    "LinkModel",
    "WireChunk",
    "chunk_message",
    "next_message_id",
    "Fabric",
    "NetworkPort",
]
