"""Command-line interface: ``python -m repro <command>``.

Subcommands:

* ``netpipe``  — run one NetPIPE sweep (module x pattern) and print the
  NetPIPE-style table;
* ``latency``  — quick 1-byte latency for all four transports vs the
  paper's Figure 4 anchors;
* ``sram``     — the firmware SRAM occupancy report (section 4.2);
* ``topology`` — inspect a machine topology (dims, diameter, a route);
* ``chaos``    — run a NetPIPE sweep under a named fault plan with the
  reliable transport on, verify payload integrity, and print the
  injected-vs-recovered report;
* ``trace``    — run one traced put, print the measured per-stage table
  (and, for small puts, the reconciliation against the analytic
  breakdown), optionally writing a Perfetto-loadable Chrome trace;
* ``stats``    — run one sweep with the metrics registry enabled, print
  the per-size utilization attribution table (which stage saturates at
  which size), reconcile the metrics layer against span aggregates, and
  optionally export JSON / Prometheus text;
* ``bench``    — run the full figure/ablation sweep fleet across a
  worker pool, write ``BENCH_results.json``, and optionally gate the
  simulated metrics against the committed golden baselines
  (``--stats`` attaches an informational utilization appendix).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .analysis import PAPER, half_bandwidth_point, latency_at, peak_bandwidth
from .machine.builder import build_pair, build_redstorm
from .mpi import MPICH1, MPICH2
from .netpipe import (
    MPIModule,
    PortalsGetModule,
    PortalsPutModule,
    decade_sizes,
    netpipe_sizes,
    run_series,
)

__all__ = ["main"]


def _module(name: str, accelerated: bool):
    if name == "put":
        return PortalsPutModule(accelerated=accelerated)
    if name == "get":
        return PortalsGetModule(accelerated=accelerated)
    if accelerated:
        raise SystemExit("--accelerated applies to the Portals modules only")
    if name == "mpich1":
        return MPIModule(MPICH1)
    if name == "mpich2":
        return MPIModule(MPICH2)
    raise SystemExit(f"unknown module {name!r}")


def cmd_netpipe(args) -> int:
    module = _module(args.module, args.accelerated)
    sizes = (
        decade_sizes(args.min_bytes, args.max_bytes)
        if args.fast
        else netpipe_sizes(args.min_bytes, args.max_bytes)
    )
    series = run_series(module, args.pattern, sizes, hops=args.hops)
    print(f"# module={series.module} pattern={series.pattern} hops={args.hops}")
    print(f"{'bytes':>10} {'latency_us':>12} {'MB/s':>10}")
    for p in series.points:
        print(f"{p.nbytes:>10} {p.latency_us:>12.3f} {p.bandwidth_mb_s:>10.2f}")
    if args.plot:
        from .analysis.viz import plot_series

        print()
        print(plot_series([series], latency=args.pattern == "pingpong"
                          and max(sizes) <= 4096))
    if args.pattern != "pingpong" or max(sizes) >= 1 << 20:
        print(f"# peak {peak_bandwidth(series):.2f} MB/s, "
              f"half-bandwidth at {half_bandwidth_point(series)} B")
    return 0


def cmd_latency(args) -> int:
    anchors = {
        "put": PAPER.put_latency_us,
        "get": PAPER.get_latency_us,
        "mpich1": PAPER.mpich1_latency_us,
        "mpich2": PAPER.mpich2_latency_us,
    }
    print(f"{'module':<10} {'paper_us':>9} {'measured_us':>12}")
    worst = 0.0
    for name, anchor in anchors.items():
        series = run_series(
            _module(name, False), "pingpong", [1], hops=args.hops
        )
        measured = latency_at(series, 1)
        worst = max(worst, abs(measured - anchor) / anchor)
        print(f"{name:<10} {anchor:>9.2f} {measured:>12.2f}")
    print(f"# worst relative deviation: {worst * 100:.1f}%")
    return 0


def cmd_sram(args) -> int:
    machine, node, _ = build_pair()
    if args.accelerated_processes:
        for _ in range(args.accelerated_processes):
            node.create_process(accelerated=True)
    print(node.seastar.sram.occupancy_report())
    return 0


def cmd_chaos(args) -> int:
    from .faults import (
        format_fault_report,
        named_plan,
        verify_payload_integrity,
    )
    from .fw.firmware import ExhaustionPolicy
    from .hw.config import DEFAULT_CONFIG
    from .netpipe import NetPipeRunner

    # GET is excluded: the reply of a lost GET carries no go-back-N
    # sequence, so reply loss is unrecoverable by design (see
    # docs/architecture.md).  chaos exercises the recoverable paths.
    module = _module(args.module, False)
    plan = named_plan(args.plan, seed=args.seed)
    cfg = DEFAULT_CONFIG.replace(reliable_transport=True)
    sizes = (
        decade_sizes(args.min_bytes, args.max_bytes)
        if args.fast
        else netpipe_sizes(args.min_bytes, args.max_bytes)
    )
    runner = NetPipeRunner(
        module,
        config=cfg,
        policy=ExhaustionPolicy.GO_BACK_N,
        hops=args.hops,
        fault_plan=plan,
    )
    series = runner.run("pingpong", sizes)
    print(f"# chaos plan={args.plan} seed={args.seed} module={series.module}")
    print(f"{'bytes':>10} {'latency_us':>12} {'MB/s':>10}")
    for p in series.points:
        print(f"{p.nbytes:>10} {p.latency_us:>12.3f} {p.bandwidth_mb_s:>10.2f}")
    print()
    print(format_fault_report(runner.machine))
    print()
    check = verify_payload_integrity(plan, sizes, config=cfg)
    if check["ok"]:
        print(f"payload integrity: OK ({check['checked']} sizes byte-identical)")
        rc = 0
    else:
        for nbytes, offset in check["mismatches"]:
            print(f"payload integrity: FAIL {nbytes}B first bad byte at {offset}")
        rc = 1
    if args.json:
        from pathlib import Path

        from .faults.campaign import (
            campaign_document,
            clean_baseline_ps,
            run_one_plan,
            spec_for_plan,
        )
        from .metrics import canonical_json

        spec = spec_for_plan(args.plan, plan, baseline_ps=clean_baseline_ps())
        record = run_one_plan(spec)
        doc = campaign_document(
            [record],
            meta={"kind": "chaos-plan", "plan": args.plan, "seed": args.seed},
        )
        Path(args.json).write_text(canonical_json(doc), encoding="utf-8")
        print(f"# wrote campaign-format report to {args.json}")
        if not record["ok"]:
            rc = 1
    return rc


def cmd_chaos_campaign(args) -> int:
    from pathlib import Path

    from .faults.campaign import (
        CampaignConfig,
        fault_classes,
        format_campaign_report,
        run_campaign,
    )
    from .metrics import canonical_json

    classes = (
        tuple(c.strip() for c in args.classes.split(",") if c.strip())
        if args.classes
        else tuple(fault_classes())
    )
    try:
        config = CampaignConfig(
            runs=args.runs,
            classes=classes,
            seed=args.seed,
            workers=args.workers,
            shard_timeout_s=args.run_timeout,
            checkpoint_dir=args.resume,
        )
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    progress = None if args.quiet else (lambda line: print(f"  {line}"))
    if not args.quiet:
        print(
            f"# chaos campaign: {config.runs} runs, "
            f"classes={','.join(config.classes)}, seed={config.seed}, "
            f"workers={config.workers}"
        )
    doc = run_campaign(config, progress=progress)
    print(format_campaign_report(doc))
    if args.out:
        Path(args.out).write_text(canonical_json(doc), encoding="utf-8")
        print(f"# wrote campaign report to {args.out}")
    camp = doc["campaign"]
    return 0 if camp["total_passed"] == camp["total_runs"] else 1


def _cmd_trace_parallel(args) -> int:
    """``repro trace --parallel N``: merged per-partition round trace."""
    from .sim.parallel import PlaneScenario, run_scenario
    from .telemetry import export_parallel_trace, format_straggler_report
    from .trace import validate_chrome_trace

    if args.parallel < 2:
        raise SystemExit("--parallel needs at least 2 partitions")
    msg_bytes = {"neighbor": 2048, "incast": 4096, "tree": 8192}[args.scenario]
    scenario = PlaneScenario(
        name=args.scenario, dims=tuple(args.dims), msg_bytes=msg_bytes
    )
    run = run_scenario(
        scenario, args.parallel, transport=args.transport, telemetry=True
    )
    info = run["info"]
    telemetry = info.get("telemetry")
    if not telemetry:
        raise SystemExit(
            "run produced no round telemetry (did the partition count "
            "clamp to 1 for these dims?)"
        )
    print(
        f"# parallel trace: scenario={args.scenario} "
        f"dims={'x'.join(str(d) for d in args.dims)} "
        f"partitions={info['partitions']} transport={info['transport']} "
        f"wall={info['wall_s']}s"
    )
    print(format_straggler_report(telemetry["straggler"]))
    if args.out:
        doc = export_parallel_trace(telemetry["partitions"], path=args.out)
        validate_chrome_trace(doc)
        print(
            f"# wrote {len(doc['traceEvents'])} trace events "
            f"({info['partitions']} partition tracks) to {args.out}"
        )
    return 0


def cmd_trace(args) -> int:
    if args.parallel is not None:
        return _cmd_trace_parallel(args)
    from .trace import (
        aggregate_stages,
        export_chrome_trace,
        format_reconcile,
        format_stage_table,
        reconcile_put,
        trace_put,
        validate_chrome_trace,
    )

    result = trace_put(args.size, hops=args.hops)
    print(f"# traced put size={args.size}B hops={args.hops} "
          f"one-way latency {result.latency_ps / 1e6:.3f} us "
          f"({len(result.spans)} spans)")
    print(format_stage_table(aggregate_stages(result.spans)))
    if args.size <= result.config.small_msg_bytes:
        print()
        report = reconcile_put(result)
        print(format_reconcile(report))
        if not report.ok:
            return 1
    if args.out:
        doc = export_chrome_trace(result.spans, path=args.out)
        validate_chrome_trace(doc)
        print(f"# wrote {len(doc['traceEvents'])} trace events to {args.out}")
    return 0


def cmd_stats(args) -> int:
    from pathlib import Path

    from .metrics import (
        attribute_windows,
        canonical_json,
        format_attribution,
        format_reconciliation,
        metrics_document,
        reconcile_with_spans,
        saturating_by_decade,
        to_prometheus_text,
    )
    from .netpipe import NetPipeRunner

    module = _module(args.module, False)
    sizes = (
        decade_sizes(args.min_bytes, args.max_bytes)
        if args.fast
        else netpipe_sizes(args.min_bytes, args.max_bytes)
    )
    reconcile = not args.no_reconcile
    runner = NetPipeRunner(
        module, hops=args.hops, metrics=True, trace=reconcile
    )
    series = runner.run(args.pattern, sizes)
    machine = runner.machine
    rows = attribute_windows(machine.metrics, runner.windows)
    print(f"# stats: module={series.module} pattern={series.pattern} "
          f"hops={args.hops} sizes={len(sizes)}")
    print(format_attribution(rows))
    print()
    print("# saturating stage per size decade:")
    for decade, stage in saturating_by_decade(rows).items():
        print(f"#   1e{decade} B: {stage}")
    reconciliation = None
    ok = True
    if reconcile:
        reconciliation = reconcile_with_spans(machine)
        ok = all(r.ok for r in reconciliation)
        print()
        print(format_reconciliation(reconciliation))
    perf = None
    if args.with_perf:
        from .perf import run_perf_smoke

        perf = run_perf_smoke(reps=args.perf_reps)
        print()
        print(f"# perf: {perf.events_per_sec:,.0f} events/sec "
              f"({perf.events:,} events in {perf.wall_s:.2f} s wall)")
    doc = metrics_document(
        machine.metrics,
        machine=machine,
        attribution=rows,
        reconciliation=reconciliation,
        perf=perf,
        meta={
            "module": series.module,
            "pattern": series.pattern,
            "hops": args.hops,
            "sizes": sizes,
        },
    )
    if args.telemetry:
        from .telemetry import format_straggler_report, telemetry_probe

        probe = telemetry_probe()
        doc["counters"].update(probe["counters"])
        print()
        print(
            "# fleet telemetry probe "
            "(2-partition pool-transport neighbor plane):"
        )
        print(format_straggler_report(probe["straggler"]))
    if args.json:
        Path(args.json).write_text(canonical_json(doc), encoding="utf-8")
        print(f"# wrote metrics JSON to {args.json}")
    if args.prom:
        Path(args.prom).write_text(to_prometheus_text(doc), encoding="utf-8")
        print(f"# wrote Prometheus text to {args.prom}")
    return 0 if ok else 1


def cmd_bench(args) -> int:
    from pathlib import Path

    if args.perf or args.update_perf_baseline:
        from .perf import (
            DEFAULT_BASELINE_PATH,
            check_regression,
            format_perf_report,
            load_baseline,
            measure_plane_scaling,
            run_perf_smoke,
            save_baseline,
        )

        result = run_perf_smoke(reps=args.perf_reps)
        if args.update_perf_baseline:
            save_baseline(
                result,
                DEFAULT_BASELINE_PATH,
                plane_scaling=measure_plane_scaling(),
            )
            print(f"# wrote {DEFAULT_BASELINE_PATH}")
        baseline = load_baseline(DEFAULT_BASELINE_PATH)
        report = format_perf_report(result, baseline)
        print(report)
        if args.perf_out:
            Path(args.perf_out).write_text(report + "\n", encoding="utf-8")
            print(f"# wrote perf report to {args.perf_out}")
        if args.perf_gate:
            # the gate's 30% allowance absorbs runner jitter; only a real
            # hot-path deoptimization (integer-factor slowdowns) trips it
            error = check_regression(result, baseline)
            if error is not None:
                print(error)
                return 1
        return 0

    from .benchrunner import (
        compare_results,
        discover_shards,
        format_compare_table,
        format_run_summary,
        load_golden_dir,
        run_bench,
        save_results,
        update_golden,
    )

    if args.list:
        for shard in discover_shards(fast=args.fast, filter=args.filter):
            print(shard.shard_id)
        return 0

    progress = None if args.quiet else (lambda line: print(f"  {line}"))
    if not args.quiet:
        shards = discover_shards(
            fast=args.fast, filter=args.filter, partitions=args.partitions
        )
        part_note = f", partitions={args.partitions}" if args.partitions > 1 else ""
        print(
            f"# repro bench: {len(shards)} shards, workers={args.workers}, "
            f"mode={'fast' if args.fast else 'full'}{part_note}"
        )
    results = run_bench(
        fast=args.fast,
        workers=args.workers,
        filter=args.filter,
        progress=progress,
        stats=args.stats,
        shard_timeout_s=args.shard_timeout,
        checkpoint_dir=args.checkpoint,
        cache_dir=args.cache,
        partitions=args.partitions,
    )
    save_results(results, Path(args.out))
    print(f"# wrote {args.out}")
    print()
    print(format_run_summary(results))

    if args.update_golden:
        golden_dir = Path(args.compare or "benchmarks/golden")
        written = update_golden(results, golden_dir)
        print(f"# updated {len(written)} golden file(s) in {golden_dir}")
        return 0
    if args.compare:
        report = compare_results(results, load_golden_dir(Path(args.compare)))
        table = format_compare_table(report)
        print()
        print(table)
        if args.diff_file:
            Path(args.diff_file).write_text(table + "\n", encoding="utf-8")
            print(f"# wrote diff table to {args.diff_file}")
        return 0 if report.ok else 1
    return 0


def cmd_serve(args) -> int:
    from .serve import ReproServer

    server = ReproServer(
        host=args.host,
        port=args.port,
        cache_dir=args.cache,
        workers=args.workers,
        batch_window_s=args.batch_window_ms / 1000.0,
        max_batch=args.max_batch,
        task_timeout_s=args.task_timeout,
        verbose=args.verbose,
    )
    server.start()
    cache_note = args.cache if args.cache else "disabled"
    print(
        f"# repro serve listening on http://{args.host}:{server.port}/v1/ "
        f"(workers={args.workers}, cache={cache_note})"
    )
    print("#   POST /v1/sweep|trace|chaos|stats|query|batch, "
          "GET /v1/health|stats; Ctrl-C to stop")
    try:
        server.serve_forever()
    finally:
        server.stop()
    return 0


def cmd_topology(args) -> int:
    machine = build_redstorm(tuple(args.dims))
    topo = machine.topology
    print(f"dims={topo.dims} wrap={topo.wrap} nodes={topo.num_nodes}")
    print(f"diameter={topo.diameter()} hops")
    if args.route:
        src, dst = args.route
        path = machine.fabric.router.path(src, dst)
        print(f"route {src} -> {dst}: {len(path) - 1} hops via {path}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Portals 3.3 / Cray XT3 reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    np_cmd = sub.add_parser("netpipe", help="run one NetPIPE sweep")
    np_cmd.add_argument(
        "--module", default="put", choices=["put", "get", "mpich1", "mpich2"]
    )
    np_cmd.add_argument(
        "--pattern", default="pingpong", choices=["pingpong", "stream", "bidir"]
    )
    np_cmd.add_argument("--min-bytes", type=int, default=1)
    np_cmd.add_argument("--max-bytes", type=int, default=1 << 20)
    np_cmd.add_argument("--hops", type=int, default=1)
    np_cmd.add_argument("--fast", action="store_true",
                        help="powers of two only")
    np_cmd.add_argument("--accelerated", action="store_true",
                        help="run the Portals module in accelerated mode")
    np_cmd.add_argument("--plot", action="store_true",
                        help="render an ASCII chart of the series")
    np_cmd.set_defaults(func=cmd_netpipe)

    lat_cmd = sub.add_parser("latency", help="1-byte latency vs Figure 4")
    lat_cmd.add_argument("--hops", type=int, default=1)
    lat_cmd.set_defaults(func=cmd_latency)

    sram_cmd = sub.add_parser("sram", help="firmware SRAM occupancy report")
    sram_cmd.add_argument(
        "--accelerated-processes", type=int, default=0,
        help="also boot N accelerated processes",
    )
    sram_cmd.set_defaults(func=cmd_sram)

    topo_cmd = sub.add_parser("topology", help="inspect a machine topology")
    topo_cmd.add_argument(
        "--dims", type=int, nargs=3, default=[27, 16, 24],
        metavar=("X", "Y", "Z"),
    )
    topo_cmd.add_argument(
        "--route", type=int, nargs=2, metavar=("SRC", "DST"),
        help="print the fixed route between two node ids",
    )
    topo_cmd.set_defaults(func=cmd_topology)

    from .faults.plan import plan_names

    chaos_cmd = sub.add_parser(
        "chaos", help="NetPIPE sweep under a fault plan + recovery report"
    )
    chaos_cmd.add_argument("--plan", default="drop-1pct", choices=plan_names())
    chaos_cmd.add_argument(
        "--module", default="put", choices=["put", "mpich1", "mpich2"],
        help="transport to sweep (get excluded: reply loss is unrecoverable)",
    )
    chaos_cmd.add_argument("--seed", type=int, default=0)
    chaos_cmd.add_argument("--min-bytes", type=int, default=1)
    chaos_cmd.add_argument("--max-bytes", type=int, default=64 * 1024)
    chaos_cmd.add_argument("--hops", type=int, default=1)
    chaos_cmd.add_argument("--fast", action="store_true",
                           help="powers of two only")
    chaos_cmd.add_argument(
        "--json", metavar="FILE",
        help="also judge the plan through the campaign invariants and "
             "write a campaign-schema report here",
    )
    chaos_cmd.set_defaults(func=cmd_chaos)

    from .faults.campaign import FAULT_CLASSES

    chaos_sub = chaos_cmd.add_subparsers(dest="chaos_command")
    camp_cmd = chaos_sub.add_parser(
        "campaign",
        help="seeded fault-plan fleet with recovery SLO report",
    )
    camp_cmd.add_argument(
        "--runs", type=int, default=21,
        help="number of fault plans to generate and run (default 21)",
    )
    camp_cmd.add_argument(
        "--classes", metavar="LIST",
        help="comma-separated fault classes (default: all of "
             f"{','.join(FAULT_CLASSES)})",
    )
    camp_cmd.add_argument("--seed", type=int, default=0)
    camp_cmd.add_argument(
        "--workers", type=int, default=1,
        help="worker processes (default 1 = in-process serial); >1 uses "
             "the crash/hang-tolerant pool",
    )
    camp_cmd.add_argument(
        "--resume", metavar="DIR",
        help="checkpoint directory: completed runs found there are "
             "skipped, new completions are written there",
    )
    camp_cmd.add_argument(
        "--out", metavar="FILE",
        help="write the campaign SLO report (repro-metrics/v1 JSON) here",
    )
    camp_cmd.add_argument(
        "--run-timeout", type=float, default=300.0,
        help="per-run watchdog timeout in seconds (default 300)",
    )
    camp_cmd.add_argument("--quiet", action="store_true",
                          help="suppress per-run progress lines")
    camp_cmd.set_defaults(func=cmd_chaos_campaign)

    trace_cmd = sub.add_parser(
        "trace", help="trace one put end to end; span table + Chrome trace"
    )
    trace_cmd.add_argument("--size", type=int, default=1,
                           help="put payload bytes")
    trace_cmd.add_argument("--hops", type=int, default=1)
    trace_cmd.add_argument("--out", metavar="FILE",
                           help="write Chrome trace-event JSON here")
    trace_cmd.add_argument(
        "--parallel", type=int, metavar="N",
        help="instead of a single put, run an N-partition parallel-DES "
             "plane with round telemetry and merge the per-partition "
             "publish/collect/absorb/advance spans into one Perfetto "
             "trace (one process track per partition)",
    )
    trace_cmd.add_argument(
        "--scenario", default="neighbor",
        choices=["neighbor", "incast", "tree"],
        help="traffic pattern for --parallel (default neighbor)",
    )
    trace_cmd.add_argument(
        "--dims", type=int, nargs=3, default=(8, 4, 2),
        metavar=("X", "Y", "Z"),
        help="plane mesh dims for --parallel (default 8 4 2)",
    )
    trace_cmd.add_argument(
        "--transport", default="memory", choices=["memory", "pool"],
        help="round-exchange transport for --parallel (default memory)",
    )
    trace_cmd.set_defaults(func=cmd_trace)

    stats_cmd = sub.add_parser(
        "stats",
        help="metrics-enabled sweep: utilization attribution + exporters",
    )
    stats_cmd.add_argument(
        "--module", default="put", choices=["put", "get", "mpich1", "mpich2"]
    )
    stats_cmd.add_argument(
        "--pattern", default="pingpong", choices=["pingpong", "stream", "bidir"]
    )
    stats_cmd.add_argument("--min-bytes", type=int, default=1)
    stats_cmd.add_argument("--max-bytes", type=int, default=1 << 23)
    stats_cmd.add_argument("--hops", type=int, default=1)
    stats_cmd.add_argument(
        "--fast", action="store_true",
        help="powers of two only (the fig5 fast schedule)",
    )
    stats_cmd.add_argument(
        "--no-reconcile", action="store_true",
        help="skip the metrics-vs-spans reconciliation (no tracing run)",
    )
    stats_cmd.add_argument(
        "--json", metavar="FILE", help="write the metrics JSON document here"
    )
    stats_cmd.add_argument(
        "--prom", metavar="FILE",
        help="write Prometheus text exposition here",
    )
    stats_cmd.add_argument(
        "--with-perf", action="store_true",
        help="also run the wall-clock perf smoke and embed events/sec "
             "in the export",
    )
    stats_cmd.add_argument(
        "--perf-reps", type=int, default=3,
        help="repetitions for --with-perf (default 3)",
    )
    stats_cmd.add_argument(
        "--telemetry", action="store_true",
        help="also run a small partitioned pool-transport plane probe "
             "and fold the parallel.*/pool.* fleet counters into the "
             "export",
    )
    stats_cmd.set_defaults(func=cmd_stats)

    bench_cmd = sub.add_parser(
        "bench",
        help="parallel figure/ablation sweep fleet + golden-baseline gate",
    )
    bench_cmd.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for the sweep pool (default 1 = serial)",
    )
    bench_cmd.add_argument(
        "--partitions", type=int, default=1,
        help="parallel-DES partition count for partitionable sweeps "
             "(redstorm_plane); every value produces byte-identical "
             "results — the differential harness enforces it",
    )
    bench_cmd.add_argument(
        "--fast", action="store_true",
        help="power-of-two size schedules (what CI runs and gates)",
    )
    bench_cmd.add_argument(
        "--compare", metavar="DIR",
        help="gate simulated metrics against this golden directory; "
             "exits nonzero on drift",
    )
    bench_cmd.add_argument(
        "--update-golden", action="store_true",
        help="rewrite the golden directory (--compare or benchmarks/golden) "
             "from this run instead of gating",
    )
    bench_cmd.add_argument(
        "--out", default="BENCH_results.json",
        help="results document path (default BENCH_results.json)",
    )
    bench_cmd.add_argument(
        "--diff-file", metavar="FILE",
        help="also write the comparison diff table here (CI artifact)",
    )
    bench_cmd.add_argument(
        "--filter", metavar="SUBSTR",
        help="only run shards whose id contains SUBSTR (debugging; "
             "figure anchors then derive from a partial series)",
    )
    bench_cmd.add_argument(
        "--stats", action="store_true",
        help="run figure shards with metrics enabled and attach an "
             "informational utilization appendix to the results document "
             "(simulated metrics stay bit-identical)",
    )
    bench_cmd.add_argument(
        "--cache", metavar="DIR",
        help="content-addressed result store: shards already present "
             "(same config, sizes, flags, and code version) are served "
             "from it without simulating; misses are stored after the "
             "run (hit/miss stats land in the wallclock half)",
    )
    bench_cmd.add_argument(
        "--checkpoint", metavar="DIR",
        help="checkpoint directory: completed shards found there are "
             "skipped, new completions are written there (resumable runs)",
    )
    bench_cmd.add_argument(
        "--shard-timeout", type=float, default=1800.0,
        help="per-shard watchdog timeout in seconds for pooled runs "
             "(default 1800)",
    )
    bench_cmd.add_argument("--list", action="store_true",
                           help="list shard ids and exit")
    bench_cmd.add_argument("--quiet", action="store_true",
                           help="suppress per-shard progress lines")
    bench_cmd.add_argument(
        "--perf", action="store_true",
        help="run the wall-clock perf smoke (fig5 fast sweep events/sec "
             "vs benchmarks/perf_baseline.json) instead of the fleet; "
             "informational unless --perf-gate is also given",
    )
    bench_cmd.add_argument(
        "--perf-gate", action="store_true",
        help="exit nonzero when the perf smoke regresses more than 30%% "
             "events/sec against the committed baseline",
    )
    bench_cmd.add_argument(
        "--perf-reps", type=int, default=3,
        help="repetitions for the perf smoke; best wall clock wins "
             "(default 3)",
    )
    bench_cmd.add_argument(
        "--perf-out", metavar="FILE",
        help="also write the perf report here (CI artifact)",
    )
    bench_cmd.add_argument(
        "--update-perf-baseline", action="store_true",
        help="rewrite benchmarks/perf_baseline.json from this measurement",
    )
    bench_cmd.set_defaults(func=cmd_bench)

    serve_cmd = sub.add_parser(
        "serve",
        help="simulation service: HTTP API with batch queue + result cache",
    )
    serve_cmd.add_argument("--host", default="127.0.0.1")
    serve_cmd.add_argument(
        "--port", type=int, default=8737,
        help="listen port (default 8737; 0 picks an ephemeral port)",
    )
    serve_cmd.add_argument(
        "--cache", metavar="DIR",
        help="content-addressed result store (shared with bench --cache); "
             "omit to simulate every request",
    )
    serve_cmd.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for cache-miss batches (default 1 = "
             "in-process); >1 shards across the self-healing pool",
    )
    serve_cmd.add_argument(
        "--batch-window-ms", type=float, default=50.0,
        help="how long the dispatcher collects a batch (default 50 ms)",
    )
    serve_cmd.add_argument(
        "--max-batch", type=int, default=32,
        help="largest request batch per dispatch cycle (default 32)",
    )
    serve_cmd.add_argument(
        "--task-timeout", type=float, default=600.0,
        help="per-request watchdog timeout for pooled execution "
             "(default 600 s)",
    )
    serve_cmd.add_argument("--verbose", action="store_true",
                           help="log every HTTP request")
    serve_cmd.set_defaults(func=cmd_serve)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
