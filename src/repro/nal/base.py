"""The NAL / bridge abstraction (sections 3.1-3.2).

The reference implementation's Network Abstraction Layer (NAL) splits the
Portals stack into an *API-to-library* path and a *library-to-network*
path.  Cray's contribution — reproduced here — was the **bridge**: a layer
atop the NAL that overrides only the API-to-library data movement and
address validation, so every process type shares the same
library-to-network code (:class:`~repro.nal.ssnal.SSNAL`).

A bridge implements the small protocol below; the API object calls it and
never knows whether it is trapping into Catamount, syscalling into Linux,
calling a kernel function directly, or posting straight to the firmware.
"""

from __future__ import annotations

import abc
from typing import Generator

from ..portals.header import ProcessId
from ..portals.md import MemoryDescriptor

__all__ = ["Bridge"]


class Bridge(abc.ABC):
    """Protocol between :class:`~repro.portals.api.PortalsAPI` and the
    Portals library."""

    @abc.abstractmethod
    def admin(self) -> Generator:
        """Charge one administrative API call's crossing + processing."""

    @abc.abstractmethod
    def eq_poll(self) -> Generator:
        """Charge one user-space event-queue poll."""

    @abc.abstractmethod
    def send_put(
        self,
        *,
        md: MemoryDescriptor,
        target: ProcessId,
        ptl_index: int,
        match_bits: int,
        ack_req: bool,
        remote_offset: int,
        hdr_data: int,
        local_offset: int,
        length: int,
    ) -> Generator:
        """Issue a put transmit command; returns once streamed."""

    @abc.abstractmethod
    def send_get(
        self,
        *,
        md: MemoryDescriptor,
        target: ProcessId,
        ptl_index: int,
        match_bits: int,
        remote_offset: int,
        local_offset: int,
        length: int,
    ) -> Generator:
        """Issue a get transmit command; returns once streamed."""

    def prepare_md(self, md: MemoryDescriptor) -> None:
        """Hook for address validation/translation at MD creation.

        The bridge layer owns address validation and translation (section
        3.2); the default accepts any well-formed MD."""

    def distance(self, target: ProcessId) -> int:
        """Hops to ``target`` (PtlNIDist); bridges with fabric access
        override this."""
        raise NotImplementedError
