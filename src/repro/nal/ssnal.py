"""SSNAL: the SeaStar NAL (section 3.3).

The library-to-network half shared by every bridge on a node.  It owns
the binding to the generic Portals library in the kernel and forwards the
entry points a NAL must provide — sending messages and (via the kernel's
interrupt handler) receiving asynchronous events from the SeaStar.

Because all bridges share this object, kernel-level clients (kbridge) and
user-level clients (uk/qkbridge) "cleanly share the network interface" —
the property the paper credits the bridge design for.
"""

from __future__ import annotations

from typing import Generator

from ..oskern.kernel import Kernel

__all__ = ["SSNAL"]


class SSNAL:
    """The SeaStar network abstraction layer instance for one node."""

    def __init__(self, kernel: Kernel):
        self.kernel = kernel

    @property
    def node_id(self) -> int:
        """The node this NAL serves."""
        return self.kernel.node_id

    def send_put(self, *, crossing: int, src_pid: int, **kw) -> Generator:
        """Forward a put to the kernel library with the bridge's crossing
        cost applied."""
        yield from self.kernel.send_put(crossing=crossing, src_pid=src_pid, **kw)

    def send_get(self, *, crossing: int, src_pid: int, **kw) -> Generator:
        """Forward a get to the kernel library."""
        yield from self.kernel.send_get(crossing=crossing, src_pid=src_pid, **kw)

    def admin_cost(self, crossing: int) -> int:
        """Total cost of an administrative call over this NAL."""
        return crossing + self.kernel.config.host_api_overhead
