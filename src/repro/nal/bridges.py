"""The three Cray bridges (section 3.2).

* :class:`QKBridge` — Catamount compute-node applications.  Crossing into
  the quintessential-kernel library is a ~75 ns trap.
* :class:`UKBridge` — Linux user-level applications.  Crossing is a full
  syscall; MDs over paged memory incur per-page pin/translate work on the
  send paths (accounted inside the kernel via its memory model).
* :class:`KBridge` — Linux kernel-level clients (Lustre service).  The
  "crossing" is a direct function call: zero boundary cost.

ukbridge and kbridge can run simultaneously on one node because they
share the same SSNAL underneath — constructing both against one
:class:`~repro.nal.ssnal.SSNAL` reproduces that.
"""

from __future__ import annotations

from typing import Generator

from ..hw.processors import Opteron
from ..sim import CPU, Simulator
from .base import Bridge
from .ssnal import SSNAL

__all__ = ["QKBridge", "UKBridge", "KBridge"]


class _KernelBridge(Bridge):
    """Shared machinery for the three kernel-library bridges."""

    #: boundary-crossing kind, for introspection/tests
    crossing_kind = "abstract"

    #: host counter ticked per kernel crossing ("traps"/"syscalls"/None)
    crossing_counter: str | None = None

    def _count_crossing(self) -> None:
        if self.crossing_counter:
            self.cpu.counters.incr(self.crossing_counter)

    def __init__(self, sim: Simulator, ssnal: SSNAL, cpu: Opteron, src_pid: int):
        self.sim = sim
        self.ssnal = ssnal
        self.cpu = cpu
        self.src_pid = src_pid
        self.config = ssnal.kernel.config

    @property
    def tracer(self):
        """The machine-wide span tracer (None when tracing is off)."""
        return self.ssnal.kernel.tracer

    @property
    def node_id(self) -> int:
        return self.ssnal.node_id

    def _span(self, name: str, **args):
        tracer = self.tracer
        if tracer is None:
            return None
        return tracer.begin(name, node=self.node_id, component="app", **args)

    def _span_end(self, span) -> None:
        if span is not None:
            self.tracer.end(span)

    def crossing_cost(self) -> int:
        """Cost of entering the kernel-resident library."""
        raise NotImplementedError

    def admin(self) -> Generator:
        self._count_crossing()
        yield from self.cpu.execute(
            self.config.host_api_overhead + self.crossing_cost(),
            priority=CPU.PRIO_KERNEL,
        )

    def eq_poll(self) -> Generator:
        # EQs live in process-visible memory: polling never crosses.
        span = self._span("host.eq_poll")
        yield from self.cpu.execute(self.config.host_eq_poll)
        self._span_end(span)

    def send_put(self, **kw) -> Generator:
        self._count_crossing()
        span = self._span("host.api_call", op="put")
        yield from self.cpu.execute(self.config.host_api_overhead)
        self._span_end(span)
        yield from self.ssnal.send_put(
            crossing=self.crossing_cost(), src_pid=self.src_pid, **kw
        )

    def send_get(self, **kw) -> Generator:
        self._count_crossing()
        span = self._span("host.api_call", op="get")
        yield from self.cpu.execute(self.config.host_api_overhead)
        self._span_end(span)
        yield from self.ssnal.send_get(
            crossing=self.crossing_cost(), src_pid=self.src_pid, **kw
        )

    def distance(self, target) -> int:
        fabric = self.ssnal.kernel.firmware.seastar.tx.fabric
        return fabric.hops(self.ssnal.node_id, target.nid)


class QKBridge(_KernelBridge):
    """Catamount application bridge (trap into the QK)."""

    crossing_kind = "catamount-trap"
    crossing_counter = "traps"

    def crossing_cost(self) -> int:
        return self.config.trap_overhead


class UKBridge(_KernelBridge):
    """Linux user-level application bridge (full syscall)."""

    crossing_kind = "linux-syscall"
    crossing_counter = "syscalls"

    def crossing_cost(self) -> int:
        return self.config.linux_syscall_overhead


class KBridge(_KernelBridge):
    """Linux kernel-level client bridge (direct function call)."""

    crossing_kind = "kernel-direct"

    def crossing_cost(self) -> int:
        return 0
