"""NAL and bridge layer (sections 3.1-3.3 of the paper)."""

from .accel import AcceleratedBridge
from .base import Bridge
from .bridges import KBridge, QKBridge, UKBridge
from .ssnal import SSNAL

__all__ = [
    "Bridge",
    "SSNAL",
    "QKBridge",
    "UKBridge",
    "KBridge",
    "AcceleratedBridge",
]
