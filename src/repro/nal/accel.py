"""The accelerated-mode bridge (sections 3.3 / 4.1 "future work",
implemented here as an extension).

An accelerated process owns a dedicated firmware mailbox and posts its
data-movement commands **directly to the firmware, without any system
call**.  Portals matching for incoming messages runs on the NIC, and
completions are written straight into the process's event queues, which
the user-level library polls — no interrupts anywhere on the data path.

Administrative calls ("commands ... related to process initialization
cannot be offloaded") still route through the OS kernel.

Accelerated mode requires physically contiguous message buffers, so it is
only constructible over Catamount's contiguous memory model — the same
restriction the paper states for Linux nodes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from ..fw.commands import FwEvent, FwEventKind, TxGetCmd, TxPutCmd
from ..fw.firmware import Firmware
from ..hw.processors import Opteron
from ..oskern.kernel import Kernel, OSType
from ..portals.constants import EventKind, NIFailType
from ..portals.events import PortalsEvent
from ..portals.header import ProcessId
from ..portals.md import MemoryDescriptor
from ..portals.ni import NetworkInterface
from ..sim import Channel, Simulator
from .base import Bridge

__all__ = ["AcceleratedBridge"]


@dataclass(eq=False)
class _AccelCtx:
    """User-library record of one in-flight accelerated operation."""

    kind: str
    md: MemoryDescriptor
    src_pid: int
    pending: object
    length: int = 0


class AcceleratedBridge(Bridge):
    """Direct-to-firmware bridge for one accelerated process."""

    crossing_kind = "accelerated-mailbox"

    def __init__(
        self,
        sim: Simulator,
        firmware: Firmware,
        kernel: Kernel,
        cpu: Opteron,
        src_pid: int,
        ni: NetworkInterface,
    ):
        if kernel.os_type is not OSType.CATAMOUNT:
            raise RuntimeError(
                "accelerated mode requires physically contiguous buffers; "
                "Linux nodes must use generic mode (paper, section 4.1)"
            )
        self.sim = sim
        self.firmware = firmware
        self.kernel = kernel
        self.cpu = cpu
        self.src_pid = src_pid
        self.ni = ni
        self.config = kernel.config
        self.proc, tx_pool = firmware.register_accelerated(
            src_pid, self._event_sink, ni
        )
        self.tx_free: Channel = Channel(sim, name=f"acctx:{src_pid}")
        for lower in tx_pool:
            self.tx_free.put(lower)

    # ------------------------------------------------------------------
    # Bridge protocol
    # ------------------------------------------------------------------
    def admin(self) -> Generator:
        """Administrative calls are forwarded to the OS kernel."""
        yield from self.cpu.execute(
            self.config.host_api_overhead + self.kernel.crossing_cost()
        )

    def eq_poll(self) -> Generator:
        yield from self.cpu.execute(self.config.host_eq_poll)

    def distance(self, target) -> int:
        fabric = self.firmware.seastar.tx.fabric
        return fabric.hops(self.firmware.node_id, target.nid)

    def send_put(
        self,
        *,
        md,
        target: ProcessId,
        ptl_index: int,
        match_bits: int,
        ack_req: bool,
        remote_offset: int,
        hdr_data: int,
        local_offset: int,
        length: int,
    ) -> Generator:
        yield from self.cpu.execute(
            self.config.host_api_overhead + self.config.ht_write_latency
        )
        pending = yield self.tx_free.get()
        ctx = _AccelCtx(
            kind="put", md=md, src_pid=self.src_pid, pending=pending, length=length
        )
        payload = md.buffer[local_offset : local_offset + length] if length else None
        self.proc.mailbox.post_command(
            TxPutCmd(
                pending_id=pending.pending_id,
                target=target,
                ptl_index=ptl_index,
                match_bits=match_bits,
                payload=payload,
                length=length,
                remote_offset=remote_offset,
                hdr_data=hdr_data,
                ack_req=ack_req,
                host_ctx=ctx,
            )
        )

    def send_get(
        self,
        *,
        md,
        target: ProcessId,
        ptl_index: int,
        match_bits: int,
        remote_offset: int,
        local_offset: int,
        length: int,
    ) -> Generator:
        yield from self.cpu.execute(
            self.config.host_api_overhead + self.config.ht_write_latency
        )
        pending = yield self.tx_free.get()
        ctx = _AccelCtx(
            kind="get", md=md, src_pid=self.src_pid, pending=pending, length=length
        )
        reply_view = md.buffer[local_offset : local_offset + length]
        self.proc.mailbox.post_command(
            TxGetCmd(
                pending_id=pending.pending_id,
                target=target,
                ptl_index=ptl_index,
                match_bits=match_bits,
                length=length,
                reply_buffer=reply_view,
                remote_offset=remote_offset,
                host_ctx=ctx,
            )
        )

    # ------------------------------------------------------------------
    # Completion sink (runs in firmware context; events go straight to
    # the user EQ — the polled, interrupt-free path)
    # ------------------------------------------------------------------
    def _event_sink(self, event: FwEvent) -> None:
        ctx: Optional[_AccelCtx] = event.host_ctx
        if ctx is None:
            return
        md = ctx.md
        if event.kind is FwEventKind.TX_COMPLETE:
            md.pending_ops -= 1
            if md.events_enabled(start=False):
                md.eq.post(
                    PortalsEvent(
                        kind=EventKind.SEND_END,
                        mlength=ctx.length,
                        rlength=ctx.length,
                        md_user_ptr=md.user_ptr,
                        md_handle=md,
                    )
                )
            self.tx_free.put(ctx.pending)
        elif event.kind is FwEventKind.REPLY_COMPLETE:
            md.pending_ops -= 1
            failed = bool(event.meta.get("failed"))
            if md.events_enabled(start=False):
                md.eq.post(
                    PortalsEvent(
                        kind=EventKind.REPLY_END,
                        initiator=event.header.src if event.header else None,
                        mlength=event.mlength,
                        rlength=ctx.length,
                        md_user_ptr=md.user_ptr,
                        md_handle=md,
                        ni_fail_type=(
                            NIFailType.DROPPED if failed else NIFailType.OK
                        ),
                    )
                )
            self.tx_free.put(ctx.pending)
        elif event.kind is FwEventKind.ACK_RECEIVED:
            if md.eq is not None:
                md.eq.post(
                    PortalsEvent(
                        kind=EventKind.ACK,
                        initiator=event.header.src if event.header else None,
                        mlength=event.mlength,
                        offset=event.offset,
                        md_user_ptr=md.user_ptr,
                        md_handle=md,
                    )
                )
        elif event.kind is FwEventKind.SEND_FAILED:
            md.pending_ops -= 1
            if md.eq is not None:
                md.eq.post(
                    PortalsEvent(
                        kind=EventKind.SEND_END,
                        mlength=0,
                        rlength=ctx.length,
                        md_user_ptr=md.user_ptr,
                        md_handle=md,
                        ni_fail_type=NIFailType.FAIL,
                    )
                )
            self.tx_free.put(ctx.pending)
