"""repro.cache — a content-addressed store for simulated results.

Determinism makes every simulated result in this repo perfectly
memoizable: the same (request, code version) pair always produces the
same bytes, so a result computed once never needs computing again.
:mod:`repro.cache.key` turns a request into a canonical content
address; :mod:`repro.cache.store` keeps the artifacts — result plus
provenance record — durable under torn writes.

Consumers: ``repro bench --cache DIR`` (shard-level memoization with
hit/miss stats in the results document) and ``repro serve`` (the
request-level memo behind the batch queue).  The CI ``cache-incremental``
job persists a store across runs keyed on the code-version hash, so
only pushes that change the simulator re-simulate.
"""

from .key import cache_key, canonical_blob, code_version
from .store import ARTIFACT_SCHEMA, CacheStats, ResultCache, provenance_record

__all__ = [
    "cache_key",
    "canonical_blob",
    "code_version",
    "ARTIFACT_SCHEMA",
    "CacheStats",
    "ResultCache",
    "provenance_record",
]
