"""The content-addressed result store.

Layout: one JSON artifact per key under ``<root>/objects/<kk>/<key>.json``
(two-hex-digit fan-out so a million artifacts never share a directory).
Each artifact carries the result **and** a provenance record — the
request that produced it, the package and code versions, how long the
simulation took and under how many workers — in the spirit of PROBE's
provenance-per-artifact discipline.

Durability reuses the worker pool's torn-write-safe pattern
(:func:`repro.benchrunner.pool.atomic_write_bytes`): artifacts are
written to a temp sibling and renamed into place, and *any* unreadable
or schema-mismatched file on the read path — torn JSON from a writer
SIGKILLed mid-stream, a foreign file, a key mismatch — loads as a plain
miss and is re-simulated.  A cache can therefore never serve a wrong
answer; the worst failure mode is doing the work again.

Test hook: ``REPRO_POOL_TEST_KILL_WRITE`` (shared with the pool) set to
a substring of a key makes :meth:`ResultCache.put` SIGKILL itself
halfway through writing *at the final path*, bypassing the atomic
rename — the torn artifact the next reader must absorb.
"""

from __future__ import annotations

import json
import os
import signal
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional

from ..benchrunner.pool import TEST_KILL_WRITE_ENV, atomic_write_bytes
from .key import code_version

__all__ = ["ARTIFACT_SCHEMA", "CacheStats", "ResultCache", "provenance_record"]

ARTIFACT_SCHEMA = "repro-cache/1"


@dataclass
class CacheStats:
    """Hit/miss accounting for one store handle."""

    hits: int = 0
    misses: int = 0
    stores: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the store (0.0 when idle)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def to_jsonable(self) -> Dict[str, Any]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "hit_rate": round(self.hit_rate, 4),
        }


def provenance_record(
    request: Dict[str, Any],
    *,
    kind: str,
    wall_s: float,
    workers: int = 1,
    code: Optional[str] = None,
) -> Dict[str, Any]:
    """The per-artifact provenance document.

    ``request`` is the exact canonical input the key was derived from;
    ``wall_s``/``workers`` say what producing it cost on the host.  Only
    the ``result`` half of an artifact feeds back into gated documents,
    so the host-specific fields here can never perturb byte-identity.
    """
    from .. import __version__

    return {
        "request": request,
        "kind": kind,
        "package_version": __version__,
        "code_version": code if code is not None else code_version(),
        "wall_s": round(wall_s, 6),
        "workers": workers,
        "created_unix": round(time.time(), 3),
    }


class ResultCache:
    """A content-addressed store of simulated results under one root."""

    def __init__(self, root: "str | os.PathLike[str]") -> None:
        self.root = Path(root)
        self.stats = CacheStats()

    def path_for(self, key: str) -> Path:
        """Where the artifact for ``key`` lives (existing or not)."""
        if len(key) < 8 or any(c not in "0123456789abcdef" for c in key):
            raise ValueError(f"malformed cache key {key!r}")
        return self.root / "objects" / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The artifact for ``key``, or None (counted as a miss).

        Anything unreadable — absent, torn mid-write, not JSON, wrong
        schema, key mismatch — is a miss; the caller re-simulates.
        """
        doc = self._load(self.path_for(key))
        if doc is None or doc.get("key") != key:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return doc

    def contains(self, key: str) -> bool:
        """Like :meth:`get` but without touching the hit/miss stats."""
        doc = self._load(self.path_for(key))
        return doc is not None and doc.get("key") == key

    def put(
        self,
        key: str,
        result: Any,
        *,
        request: Dict[str, Any],
        kind: str,
        wall_s: float,
        workers: int = 1,
        code: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Store ``result`` under ``key`` with its provenance; return
        the artifact document as written."""
        doc = {
            "schema": ARTIFACT_SCHEMA,
            "key": key,
            "result": result,
            "provenance": provenance_record(
                request, kind=kind, wall_s=wall_s, workers=workers, code=code
            ),
        }
        blob = (
            json.dumps(doc, sort_keys=True, ensure_ascii=False, indent=2) + "\n"
        ).encode("utf-8")
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        kill_pat = os.environ.get(TEST_KILL_WRITE_ENV)
        if kill_pat and kill_pat in key:  # pragma: no cover - dies by design
            # SIGKILL mid-write at the final path (no atomic rename):
            # leaves the torn artifact the read path must treat as a miss
            with open(path, "wb") as fh:
                fh.write(blob[: max(1, len(blob) // 2)])
                fh.flush()
                os.fsync(fh.fileno())
                os.kill(os.getpid(), signal.SIGKILL)
        atomic_write_bytes(str(path), blob)
        self.stats.stores += 1
        return doc

    @staticmethod
    def _load(path: Path) -> Optional[Dict[str, Any]]:
        try:
            with open(path, encoding="utf-8") as fh:
                doc = json.load(fh)
        except (OSError, ValueError):
            return None
        if not isinstance(doc, dict) or doc.get("schema") != ARTIFACT_SCHEMA:
            return None
        if "result" not in doc or not isinstance(doc.get("provenance"), dict):
            return None
        return doc
