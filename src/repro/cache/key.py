"""Canonical cache keys for simulated results.

Every simulated quantity in this repo is a pure function of its inputs
(the determinism discipline: bit-identical goldens, byte-identical
parallel execution at any worker count), so a result is fully described
by the canonical hash of

* the **request** — figure/sweep config, sizes, seed, fault plan,
  backend flags — expressed as a plain JSON document, and
* the **code version** — a digest over every ``src/repro/**/*.py``
  source file, so any change to the simulator invalidates every key.

Canonicalization rules: requests must be JSON-serializable (dicts,
lists/tuples, strings, ints, floats, bools, None), dict insertion order
never matters (keys are sorted), and tuples equal their list spellings.
Anything else is a ``TypeError`` — a key that silently depended on
``repr()`` of a live object would not be stable across processes.

The key deliberately excludes everything that cannot change a simulated
result: worker counts, checkpoint directories, wall-clock, hostnames.
That is what makes a cache warmed by ``--workers 1`` serve a
``--workers 8`` run (and vice versa) at a 100% hit rate.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Dict, Optional

__all__ = ["canonical_blob", "cache_key", "code_version"]

#: cache-key schema tag, folded into every digest so a future change to
#: the key derivation can never collide with today's artifacts
KEY_SCHEMA = "repro-cache-key/1"


def canonical_blob(doc: Any) -> bytes:
    """The one true byte encoding of a request document.

    Sorted keys, compact separators, UTF-8 — equal documents (up to dict
    ordering and tuple/list spelling) produce equal bytes.
    """
    try:
        text = json.dumps(
            doc,
            sort_keys=True,
            separators=(",", ":"),
            ensure_ascii=False,
            allow_nan=False,
        )
    except (TypeError, ValueError) as exc:
        raise TypeError(f"request is not canonicalizable: {exc}") from None
    return text.encode("utf-8")


def _package_root() -> Path:
    """The ``src/repro`` package directory this module was loaded from."""
    return Path(__file__).resolve().parent.parent


_CODE_VERSION_CACHE: Dict[str, str] = {}


def code_version(root: Optional[Path] = None) -> str:
    """Digest of every ``*.py`` file under the package tree.

    Any source change — an engine fix, a new cost model, a schema tweak
    — yields a new digest, so stale cached results are structurally
    unreachable rather than policed by TTLs.  The walk is sorted by
    relative path and hashes path and content both (a rename with
    identical bytes still invalidates).  Memoized per process: the tree
    cannot change under a running interpreter's feet in any way that
    matters (the loaded modules wouldn't see it either).
    """
    base = Path(root) if root is not None else _package_root()
    cache_id = str(base)
    cached = _CODE_VERSION_CACHE.get(cache_id)
    if cached is not None:
        return cached
    digest = hashlib.sha256(KEY_SCHEMA.encode("utf-8"))
    for path in sorted(base.rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        digest.update(path.relative_to(base).as_posix().encode("utf-8"))
        digest.update(b"\x00")
        digest.update(path.read_bytes())
        digest.update(b"\x00")
    version = digest.hexdigest()
    _CODE_VERSION_CACHE[cache_id] = version
    return version


def cache_key(request: Dict[str, Any], *, code: Optional[str] = None) -> str:
    """The content address of the result ``request`` describes.

    ``code`` defaults to :func:`code_version` of the running tree; tests
    (and anything replaying a foreign store) can pin it explicitly.
    """
    if not isinstance(request, dict):
        raise TypeError("request must be a dict")
    envelope = {
        "schema": KEY_SCHEMA,
        "code": code if code is not None else code_version(),
        "request": request,
    }
    return hashlib.sha256(canonical_blob(envelope)).hexdigest()
