"""repro — a simulation-based reproduction of
"Implementation and Performance of Portals 3.3 on the Cray XT3"
(Brightwell, Hudson, Pedretti, Riesen, Underwood — CLUSTER 2005).

The package implements the full stack the paper describes — the SeaStar
NIC, its firmware, the 3D torus, the Portals 3.3 API with NAL/bridge
architecture, Catamount/Linux kernels, two MPI implementations and the
NetPIPE methodology — on a deterministic discrete-event simulator, so the
paper's figures can be regenerated on a laptop.

Quick start::

    from repro import build_pair
    from repro.netpipe import PortalsPutModule, pingpong_point

    machine, a, b = build_pair()
    point = pingpong_point(machine, a, b, PortalsPutModule, nbytes=1)
    print(point.latency_us)   # ~5.4 us, Figure 4's 1-byte put

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from .hw.config import DEFAULT_CONFIG, SeaStarConfig
from .machine import Machine, Node, build_pair, build_redstorm

__version__ = "0.1.0"

__all__ = [
    "SeaStarConfig",
    "DEFAULT_CONFIG",
    "Machine",
    "Node",
    "build_pair",
    "build_redstorm",
    "__version__",
]
