"""The SeaStar firmware model (sections 4.1–4.3 of the paper).

A single-threaded event loop on the embedded PowerPC: commands arrive in
per-process mailboxes, new-message notifications arrive from the RX DMA
engine, completion notifications from both engines.  Handlers run to
completion; each charges the PowerPC a cost from
:class:`~repro.hw.config.SeaStarConfig`.

Both operating modes are implemented:

* **generic** — the firmware copies headers to the host and interrupts it
  for every Portals decision (matching on the host).  This is the mode
  the paper measures.
* **accelerated** — matching runs here on the NIC via the same
  platform-independent :mod:`repro.portals.matching` logic the kernel
  uses, completions are written straight into user event queues, and no
  interrupts fire.  The paper describes this as in-progress future work;
  we implement it (the ablation benchmarks quantify what it buys).

Resource exhaustion follows section 4.3: free lists can empty.  Policy
``PANIC`` reproduces the current behaviour ("panic the node, which
results in application failure"); policy ``GO_BACK_N`` implements the
recovery protocol the authors were building — receivers NACK messages
they cannot accept (and everything after, in per-source message order)
and senders replay from the refused sequence after a backoff.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import Any, Callable, Optional

import numpy as np

from ..hw.config import SeaStarConfig
from ..hw.dma import DepositPlan, Transmission
from ..hw.seastar import SeaStar
from ..net.packet import WireChunk, chunk_message
from ..portals.constants import MsgType
from ..portals.errors import NicPanic
from ..portals.header import PortalsHeader, ProcessId
from ..portals.matching import commit_operation, match_request
from ..sim import Channel, Counters, Event, Simulator
from .commands import (
    FwEvent,
    FwEventKind,
    InitProcessCmd,
    NicStatsCmd,
    ReleasePendingCmd,
    RxDepositCmd,
    TxAckCmd,
    TxGetCmd,
    TxPutCmd,
    TxReplyCmd,
)
from .mailbox import Mailbox
from .structs import (
    FreeList,
    FwProcess,
    LowerPending,
    NicControlBlock,
    PendingKind,
    Source,
    UpperPending,
)

__all__ = ["Firmware", "ExhaustionPolicy", "RetxRecord"]


class ExhaustionPolicy(enum.Enum):
    """What to do when a firmware free list empties."""

    PANIC = "panic"
    GO_BACK_N = "go_back_n"


@dataclass(eq=False)
class RetxRecord:
    """Sender-side retransmission state for one in-flight-or-recent
    request (go-back-N)."""

    seq: int
    dst_node: int
    header: PortalsHeader
    payload: Optional[np.ndarray]
    proc: FwProcess
    lower: Optional[LowerPending]
    host_ctx: Any
    retries: int = 0

    acked: bool = False
    """Receiver confirmed delivery (via cumulative SACK, reliable mode)
    — or the record was superseded; never retransmit again."""

    failed: bool = False
    """Retries exhausted and SEND_FAILED surfaced; latched so the
    failure event fires exactly once per message."""

    ack_pending: bool = False
    """The initiator asked for a Portals ACK that has not arrived yet.

    A cumulative SACK proves the *data* landed (``acked``), but the ACK
    control message rides the same lossy wire back — a link that dies in
    that window eats the host's only terminal event.  While this flag is
    set the record still counts as live traffic for the peer monitor, so
    a peer-death declaration can sweep it into a SEND_FAILED verdict
    (Portals semantics: PTL_NI_FAIL means *not known to be delivered*,
    which is exactly the truth here)."""


class Firmware:
    """One node's firmware instance, attached to its SeaStar."""

    GENERIC_FW_PID = 1

    def __init__(
        self,
        sim: Simulator,
        config: SeaStarConfig,
        seastar: SeaStar,
        *,
        policy: ExhaustionPolicy = ExhaustionPolicy.PANIC,
    ):
        self.sim = sim
        self.config = config
        self.seastar = seastar
        self.node_id = seastar.node_id
        self.policy = policy
        self.panicked = False
        self.counters = Counters()
        self.tracer = None
        """Optional machine-wide :class:`~repro.sim.Tracer`; when set,
        the firmware emits per-message lifecycle records."""

        # SRAM layout: control block, then the global source pool.
        seastar.sram.reserve("nic_control_block", 1, 4096)
        sources = FreeList(
            [Source() for _ in range(config.num_sources)], name="sources"
        )
        seastar.sram.reserve(
            "sources", config.num_sources, config.source_struct_bytes
        )
        self.control = NicControlBlock(sources=sources)

        # Firmware-internal pendings for ACK/NAK/accelerated-REPLY traffic.
        self._pending_ids = itertools.count(1)
        self._pendings: dict[int, LowerPending] = {}
        self.internal_pool = self._make_pending_pool(
            fw_pid=0, count=config.fw_internal_pendings, name="fw_internal"
        )
        seastar.sram.reserve(
            "fw_internal_pendings",
            config.fw_internal_pendings,
            config.pending_struct_bytes,
        )

        self.processes: dict[int, FwProcess] = {}  # fw_pid -> process
        self.generic: Optional[FwProcess] = None
        self._accel_by_pid: dict[int, FwProcess] = {}
        self._fw_pids = itertools.count(self.GENERIC_FW_PID)

        # go-back-N sender state
        self._tx_history: dict[tuple[int, int], RetxRecord] = {}
        self._history_order: list[tuple[int, int]] = []
        self._retx_queues: dict[int, list[RetxRecord]] = {}
        self._retx_scheduled: set[int] = set()
        # reliable transport: highest cumulatively-SACKed seq per dst node
        self._acked_through: dict[int, int] = {}

        # crash / peer-death state (chaos machinery).  All of this stays
        # empty/None on a healthy run, so the hot path only ever pays
        # falsy attribute checks — the event schedule is untouched.
        self._dead = False
        self._crash_until: Optional[int] = None
        self._peer_timeout: Optional[int] = None
        self._peer_last_heard: dict[int, int] = {}
        self._peer_watches: set[int] = set()
        self._peer_dead: set[int] = set()
        self.peer_death_times: dict[int, int] = {}
        """When (ps) this firmware declared each peer dead."""

        self.work: Channel = Channel(sim, name=f"fwwork:{self.node_id}")
        seastar.attach_firmware(self._on_header)
        # fault injection: the pipe's reassembly stage reports messages
        # that failed the end-to-end CRC (or lost chunks) here
        seastar.port.on_transport_error = self._on_transport_error
        sim.process(self._main_loop(), name=f"fw:{self.node_id}")

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    def _make_pending_pool(self, fw_pid: int, count: int, name: str) -> FreeList:
        items = []
        for _ in range(count):
            pid = next(self._pending_ids)
            lower = LowerPending(pending_id=pid, owner_pid=fw_pid)
            lower.upper = UpperPending(pending_id=pid)
            self._pendings[pid] = lower
            items.append(lower)
        return FreeList(items, name=name)

    def register_generic(
        self, event_sink: Callable[[FwEvent], None]
    ) -> tuple[FwProcess, list[LowerPending]]:
        """Register the kernel's generic Portals process.

        Returns the process and the host-managed TX pending pool (the
        kernel owns its free list; the firmware only ever sees ids).
        """
        if self.generic is not None:
            raise RuntimeError("generic process already registered")
        proc, tx_pool = self._register(
            host_pid=-1,
            accelerated=False,
            event_sink=event_sink,
            tx_count=self.config.generic_tx_pendings,
            rx_count=self.config.generic_rx_pendings,
            ni=None,
        )
        self.generic = proc
        return proc, tx_pool

    def register_accelerated(
        self,
        host_pid: int,
        event_sink: Callable[[FwEvent], None],
        ni: Any,
    ) -> tuple[FwProcess, list[LowerPending]]:
        """Register an accelerated application process.

        Limited NIC resources bound how many fit (section 4.1: "one or
        two on each Catamount compute node") — the SRAM allocator enforces
        the real constraint.
        """
        if host_pid in self._accel_by_pid:
            raise RuntimeError(f"pid {host_pid} already accelerated")
        proc, tx_pool = self._register(
            host_pid=host_pid,
            accelerated=True,
            event_sink=event_sink,
            tx_count=self.config.accel_tx_pendings,
            rx_count=self.config.accel_rx_pendings,
            ni=ni,
        )
        self._accel_by_pid[host_pid] = proc
        return proc, tx_pool

    def _register(self, host_pid, accelerated, event_sink, tx_count, rx_count, ni):
        fw_pid = next(self._fw_pids)
        mailbox = Mailbox(self.sim, name=f"mbox:{self.node_id}:{fw_pid}")
        proc = FwProcess(
            fw_pid=fw_pid,
            host_pid=host_pid,
            accelerated=accelerated,
            mailbox=mailbox,
            event_sink=event_sink,
            ni=ni,
        )
        self.seastar.sram.reserve(
            f"pendings:fw_pid{fw_pid}",
            tx_count + rx_count,
            self.config.pending_struct_bytes,
        )
        rx_pool = self._make_pending_pool(fw_pid, rx_count, f"rx:{fw_pid}")
        proc.rx_pendings = rx_pool
        tx_pool_list = self._make_pending_pool(fw_pid, tx_count, f"tx:{fw_pid}")
        tx_items = [tx_pool_list.alloc() for _ in range(tx_count)]
        proc.tx_pendings = tx_pool_list  # drained: host manages these
        for lower in tx_items:
            proc.upper_table[lower.pending_id] = lower.upper
        self.processes[fw_pid] = proc
        self.sim.process(self._mailbox_pump(proc), name=f"mbpump:{fw_pid}")
        return proc, tx_items

    def _mailbox_pump(self, proc: FwProcess):
        while True:
            cmd = yield proc.mailbox.commands.get()
            proc.mailbox.commands.consumed()
            self.work.put(("cmd", proc, cmd))

    # ------------------------------------------------------------------
    # Hardware callbacks (run in engine process context — keep O(1))
    # ------------------------------------------------------------------
    def _on_header(self, chunk: WireChunk) -> None:
        self.work.put(("rx_header", chunk))

    def _on_transport_error(self, header: Optional[PortalsHeader], reason: str) -> None:
        self.work.put(("transport_error", header, reason))

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def _trace(self, category: str, **detail) -> None:
        if self.tracer is not None:
            detail["node"] = self.node_id
            self.tracer.emit(category, detail)

    def _span(self, name: str, msg_id: Optional[int] = None, **args):
        if self.tracer is None:
            return None
        return self.tracer.begin(
            name, node=self.node_id, component="fw", msg_id=msg_id, **args
        )

    def _span_end(self, span, **args) -> None:
        if span is not None:
            self.tracer.end(span, **args)

    def _end_tx_cmd_span(self, span, cmd) -> None:
        """Close a ``fw.tx_cmd`` span, backfilling the message id the
        chunker just assigned (both here and on the host's open
        ``host.tx_kernel`` span, which began before the id existed)."""
        if span is None:
            return
        lower = self._pendings[cmd.pending_id]
        if lower.msg_id > 0:
            span.msg_id = lower.msg_id
            host_span = getattr(cmd.host_ctx, "trace_span", None)
            if host_span is not None and host_span.msg_id is None:
                host_span.msg_id = lower.msg_id
        self.tracer.end(span)

    def _main_loop(self):
        ppc = self.seastar.ppc
        cfg = self.config
        # hoisted: one work item per message on the measured hot path,
        # and neither the channel nor the control block is ever replaced
        # (both live in SRAM and survive watchdog restarts)
        work_get = self.work.get
        control = self.control
        while True:
            item = yield work_get()
            if self._dead:
                # a dead firmware never touches another work item; park
                # on an event nobody will trigger so further traffic just
                # queues in the channel and the simulation still drains
                yield Event(self.sim)
            if self._crash_until is not None:
                # watchdog reboot in progress: SRAM (sources, seq state,
                # pendings) survives, queued work waits out the reset
                delay = self._crash_until - self.sim.now
                self._crash_until = None
                self.counters.incr("fw_restarts")
                if delay > 0:
                    yield delay
            control.heartbeat += 1
            kind = item[0]
            if kind == "cmd":
                _, proc, cmd = item
                yield from self._handle_command(proc, cmd)
            elif kind == "rx_header":
                yield from self._handle_rx_header(item[1])
            elif kind == "tx_done":
                yield from self._handle_tx_done(item[1], item[2])
            elif kind == "deposit_done":
                yield from self._handle_deposit_done(item[1], item[2])
            elif kind == "accel_deposit_done":
                yield from self._handle_accel_deposit_done(*item[1:])
            elif kind == "reply_done":
                yield from self._handle_reply_done(item[1], item[2])
            elif kind == "discard_done":
                yield from ppc.handler(cfg.fw_release_cmd)
            elif kind == "retransmit_flush":
                yield from self._handle_retransmit_flush(item[1])
            elif kind == "transport_error":
                yield from self._handle_transport_error(item[1], item[2])
            elif kind == "peer_dead":
                yield from self._handle_peer_dead(item[1])
            else:  # pragma: no cover - defensive
                raise RuntimeError(f"unknown firmware work item {kind!r}")

    # ------------------------------------------------------------------
    # Command handling
    # ------------------------------------------------------------------
    def _handle_command(self, proc: FwProcess, cmd: Any):
        ppc = self.seastar.ppc
        cfg = self.config
        if isinstance(cmd, TxPutCmd):
            span = self._span("fw.tx_cmd", op="put")
            yield from ppc.handler(cfg.fw_tx_cmd + cfg.fw_tx_dma_setup)
            self._start_put(proc, cmd)
            self._end_tx_cmd_span(span, cmd)
        elif isinstance(cmd, TxGetCmd):
            span = self._span("fw.tx_cmd", op="get")
            yield from ppc.handler(cfg.fw_tx_cmd + cfg.fw_tx_dma_setup)
            self._start_get(proc, cmd)
            self._end_tx_cmd_span(span, cmd)
        elif isinstance(cmd, TxReplyCmd):
            span = self._span("fw.tx_cmd", op="reply")
            yield from ppc.handler(cfg.fw_tx_cmd + cfg.fw_tx_dma_setup)
            self._start_reply(proc, cmd)
            self._end_tx_cmd_span(span, cmd)
        elif isinstance(cmd, TxAckCmd):
            yield from ppc.handler(cfg.fw_tx_cmd)
            self._send_control(
                op=MsgType.ACK,
                dst_node=cmd.target.nid,
                dst_pid=cmd.target.pid,
                initiator_ctx=cmd.initiator_ctx,
                meta={"mlength": cmd.mlength, "offset": cmd.offset},
            )
        elif isinstance(cmd, RxDepositCmd):
            lower = self._pendings[cmd.pending_id]
            span = self._span("fw.rx_cmd", msg_id=lower.msg_id)
            extra = max(0, cmd.dma_commands - 1) * (cfg.fw_rx_dma_setup // 4)
            yield from ppc.handler(cfg.fw_rx_cmd + cfg.fw_rx_dma_setup + extra)
            self._program_deposit(proc, cmd)
            self._span_end(span)
        elif isinstance(cmd, ReleasePendingCmd):
            span = self._span("fw.release", pending_id=cmd.pending_id)
            yield from ppc.handler(cfg.fw_release_cmd)
            self._release_rx_pending(proc, cmd.pending_id)
            self._span_end(span)
        elif isinstance(cmd, InitProcessCmd):
            yield from ppc.handler(cfg.fw_tx_cmd)
            proc.mailbox.results.post({"ok": True, "fw_pid": proc.fw_pid})
        elif isinstance(cmd, NicStatsCmd):
            yield from ppc.handler(cfg.fw_tx_cmd)
            proc.mailbox.results.post(self.stats_snapshot())
        else:  # pragma: no cover - defensive
            raise RuntimeError(f"unknown firmware command {cmd!r}")

    # -- transmit path ----------------------------------------------------------
    def _start_put(self, proc: FwProcess, cmd: TxPutCmd) -> None:
        lower = self._pendings[cmd.pending_id]
        hdr = PortalsHeader(
            op=MsgType.PUT,
            src=ProcessId(self.node_id, proc.host_pid if proc.accelerated else cmd.host_ctx.src_pid),
            dst=cmd.target,
            ptl_index=cmd.ptl_index,
            match_bits=cmd.match_bits,
            length=cmd.length,
            offset=cmd.remote_offset,
            hdr_data=cmd.hdr_data,
            ack_req=cmd.ack_req,
            initiator_ctx=cmd.pending_id,
        )
        lower.kind = PendingKind.TX
        lower.state = "tx_queued"
        lower.header = hdr
        lower.buffer = cmd.payload
        lower.dest_node = cmd.target.nid
        lower.upper.header = hdr
        lower.upper.host_ctx = cmd.host_ctx
        self._transmit_request(proc, lower, hdr, cmd.payload, cmd.host_ctx)

    def _start_get(self, proc: FwProcess, cmd: TxGetCmd) -> None:
        lower = self._pendings[cmd.pending_id]
        hdr = PortalsHeader(
            op=MsgType.GET,
            src=ProcessId(self.node_id, proc.host_pid if proc.accelerated else cmd.host_ctx.src_pid),
            dst=cmd.target,
            ptl_index=cmd.ptl_index,
            match_bits=cmd.match_bits,
            length=cmd.length,
            offset=cmd.remote_offset,
            initiator_ctx=cmd.pending_id,
        )
        lower.kind = PendingKind.TX
        lower.state = "get_outstanding"
        lower.header = hdr
        lower.reply_buffer = cmd.reply_buffer
        lower.direct_eq = cmd.direct_eq
        lower.md_ref = cmd.md_ref
        lower.dest_node = cmd.target.nid
        lower.upper.header = hdr
        lower.upper.host_ctx = cmd.host_ctx
        self._transmit_request(proc, lower, hdr, None, cmd.host_ctx)

    def _transmit_request(self, proc, lower, hdr, payload, host_ctx) -> None:
        if self._peer_dead and lower.dest_node in self._peer_dead:
            # the peer was already declared dead: fail fast instead of
            # burning a source + the full retry/backoff budget
            self.counters.incr("dead_peer_sends")
            proc.event_sink(
                FwEvent(
                    kind=FwEventKind.SEND_FAILED,
                    pending_id=lower.pending_id,
                    header=hdr,
                    host_ctx=host_ctx,
                )
            )
            return
        src = self.control.attach_source(lower.dest_node)
        if src is None:
            self._tx_source_exhausted(proc, lower, hdr, payload, host_ctx)
            return
        hdr.wire_seq = src.next_tx_seq
        src.next_tx_seq += 1
        if self.policy is ExhaustionPolicy.GO_BACK_N:
            reliable = self.config.reliable_transport
            record = RetxRecord(
                seq=hdr.wire_seq,
                dst_node=lower.dest_node,
                header=hdr,
                # With a lossy wire the host may legitimately reuse its
                # buffer after the local SEND_END, so the firmware must
                # retain the bytes it may need to retransmit (the real
                # NIC holds them in the TX pending's SRAM view).  On the
                # lossless default wire the original reference suffices.
                payload=(
                    np.array(payload, copy=True)
                    if reliable and payload is not None
                    else payload
                ),
                proc=proc,
                lower=lower,
                host_ctx=host_ctx,
                ack_pending=bool(hdr.ack_req),
            )
            self._record_history(record)
            if reliable:
                self.sim.process(
                    self._ack_watchdog(record),
                    name=f"fw:watchdog:{self.node_id}:{lower.dest_node}:{hdr.wire_seq}",
                )
                if self._peer_timeout is not None:
                    self._ensure_peer_watch(lower.dest_node)
        self._submit(proc, lower, hdr, payload)

    def _submit(self, proc, lower, hdr, payload) -> None:
        cfg = self.config
        inline = None
        body = hdr.length if hdr.op in (MsgType.PUT, MsgType.REPLY) else 0
        if body and body <= cfg.small_msg_bytes and payload is not None:
            inline = np.array(payload[:body], copy=True)
            hdr.inline_data = inline
            body = 0
        chunks = chunk_message(
            src=self.node_id,
            dst=hdr.dst.nid,
            header=hdr,
            body_bytes=body,
            payload=payload,
            packet_bytes=cfg.packet_bytes,
            chunk_bytes=cfg.chunk_bytes,
            inline_bytes=len(inline) if inline is not None else 0,
        )
        lower.msg_id = chunks[0].msg_id
        self.control.tx_pending_list.append(lower)
        self.counters.incr("tx_messages")
        self._trace(
            "fw.tx", op=hdr.op.value, msg_id=lower.msg_id, dst=hdr.dst.nid,
            nbytes=hdr.length,
        )
        tx = Transmission(
            chunks=chunks,
            on_sent=lambda _tx, p=proc, lo=lower: self.work.put(("tx_done", p, lo)),
            tag=lower,
        )
        self.seastar.tx.submit(tx)

    def _start_reply(self, proc: FwProcess, cmd: TxReplyCmd) -> None:
        lower = self._pendings[cmd.pending_id]
        hdr = PortalsHeader(
            op=MsgType.REPLY,
            src=ProcessId(self.node_id, proc.host_pid),
            dst=cmd.target,
            length=cmd.length,
            initiator_ctx=cmd.initiator_ctx,
        )
        if getattr(cmd, "failed", False):
            hdr.meta["failed"] = True
        lower.kind = PendingKind.TX
        lower.state = "reply_queued"
        lower.header = hdr
        lower.buffer = cmd.payload
        lower.direct_eq = cmd.direct_eq
        lower.direct_event = cmd.direct_event
        lower.dest_node = cmd.target.nid
        lower.upper.header = hdr
        lower.upper.host_ctx = cmd.host_ctx
        self._submit(proc, lower, hdr, cmd.payload)

    def _send_control(
        self,
        *,
        op: MsgType,
        dst_node: int,
        dst_pid: int,
        initiator_ctx: Optional[int],
        meta: Optional[dict] = None,
        length: int = 0,
        payload: Optional[np.ndarray] = None,
    ) -> bool:
        """Send a firmware-originated control message (ACK/NAK/accel REPLY)
        from the internal pending pool.  Returns False when the pool is
        empty (control traffic is then dropped; senders recover by
        timeout/retry in go-back-N mode, and ACK loss is permitted by
        Portals semantics)."""
        lower = self.internal_pool.alloc()
        if lower is None:
            self.counters.incr("control_drops")
            return False
        hdr = PortalsHeader(
            op=op,
            src=ProcessId(self.node_id, 0),
            dst=ProcessId(dst_node, dst_pid),
            length=length,
            initiator_ctx=initiator_ctx,
        )
        if meta:
            hdr.meta.update(meta)
        lower.kind = PendingKind.TX
        lower.state = "control"
        lower.header = hdr
        lower.buffer = payload
        lower.dest_node = dst_node
        self._submit_internal(lower, hdr, payload)
        return True

    def _submit_internal(self, lower, hdr, payload) -> None:
        cfg = self.config
        body = hdr.length if hdr.op is MsgType.REPLY else 0
        inline = None
        if body and body <= cfg.small_msg_bytes and payload is not None:
            inline = np.array(payload[:body], copy=True)
            hdr.inline_data = inline
            body = 0
        chunks = chunk_message(
            src=self.node_id,
            dst=hdr.dst.nid,
            header=hdr,
            body_bytes=body,
            payload=payload,
            packet_bytes=cfg.packet_bytes,
            chunk_bytes=cfg.chunk_bytes,
            inline_bytes=len(inline) if inline is not None else 0,
        )
        lower.msg_id = chunks[0].msg_id
        on_sent = lambda _tx, lo=lower: self._recycle_internal(lo)  # noqa: E731
        self.counters.incr("control_messages")
        self.seastar.tx.submit(Transmission(chunks=chunks, on_sent=on_sent, tag=lower))

    def _recycle_internal(self, lower: LowerPending) -> None:
        lower.reset()
        self.internal_pool.free(lower)

    # -- deposit programming ------------------------------------------------------
    def _program_deposit(self, proc: FwProcess, cmd: RxDepositCmd) -> None:
        lower = self._pendings[cmd.pending_id]
        plan = DepositPlan(
            msg_id=lower.msg_id,
            dest=cmd.dest,
            accept_bytes=cmd.accept_bytes,
            on_complete=lambda _p, pr=proc, lo=lower: self.work.put(
                ("deposit_done", pr, lo)
            ),
            tag=lower,
        )
        assert self.seastar.rx is not None
        self.seastar.rx.program(plan)

    def _program_discard(self, msg_id: int) -> None:
        plan = DepositPlan(
            msg_id=msg_id,
            dest=None,
            accept_bytes=0,
            on_complete=lambda _p: self.work.put(("discard_done",)),
        )
        assert self.seastar.rx is not None
        self.seastar.rx.program(plan)
        self.counters.incr("discards")

    def _release_rx_pending(self, proc: FwProcess, pending_id: int) -> None:
        lower = self._pendings[pending_id]
        src = self.control.lookup_source(lower.header.src.nid) if lower.header else None
        if src is not None and lower in src.rx_pending_list:
            src.rx_pending_list.remove(lower)
        lower.reset()
        proc.rx_pendings.free(lower)

    # ------------------------------------------------------------------
    # Receive path
    # ------------------------------------------------------------------
    def _handle_rx_header(self, chunk: WireChunk):
        ppc = self.seastar.ppc
        cfg = self.config
        hdr: PortalsHeader = chunk.header
        span = self._span("fw.rx", msg_id=chunk.msg_id, op=hdr.op.value)
        yield from ppc.handler(cfg.fw_rx_header)
        self.counters.incr("rx_headers")
        if self._peer_timeout is not None:
            # any traffic from a peer proves it alive (SACKs included)
            self._peer_last_heard[hdr.src.nid] = self.sim.now
        self._trace(
            "fw.rx_header", op=hdr.op.value, msg_id=chunk.msg_id,
            src=hdr.src.nid, nbytes=hdr.length,
        )

        if hdr.op is MsgType.PUT or hdr.op is MsgType.GET:
            yield from self._rx_request(chunk, hdr)
        elif hdr.op is MsgType.REPLY:
            yield from self._rx_reply(chunk, hdr)
        elif hdr.op is MsgType.ACK:
            yield from self._rx_ack(chunk, hdr)
        elif hdr.op is MsgType.NAK:
            yield from self._rx_nak(chunk, hdr)
        elif hdr.op is MsgType.SACK:
            yield from self._rx_sack(hdr)
        else:  # pragma: no cover - defensive
            raise RuntimeError(f"unknown wire op {hdr.op}")
        self._span_end(span)

    def _rx_request(self, chunk: WireChunk, hdr: PortalsHeader):
        cfg = self.config
        ppc = self.seastar.ppc
        source = self.control.attach_source(hdr.src.nid)
        if source is None:
            yield from self._rx_exhausted(chunk, hdr, None, "sources")
            return

        # go-back-N: per-source request ordering.
        if hdr.wire_seq < source.expect_rx_seq:
            # Duplicate of something already accepted; drain and drop.
            # In reliable mode re-SACK so a spurious (timeout-raced)
            # retransmission terminates the sender's watchdog even if
            # the original SACK was itself lost.
            self.counters.incr("duplicates")
            if cfg.reliable_transport:
                yield from ppc.charge(cfg.fw_tx_cmd)
                self._send_transport_ack(hdr.src.nid, source.expect_rx_seq - 1)
            if not chunk.is_last:
                self._program_discard(chunk.msg_id)
            return
        if hdr.wire_seq > source.expect_rx_seq:
            # A predecessor was refused; refuse this too to preserve order.
            yield from self._rx_exhausted(chunk, hdr, source, "order")
            return

        proc = self._accel_by_pid.get(hdr.dst.pid, self.generic)
        if proc is None:
            raise RuntimeError("no firmware process registered for traffic")
        lower = proc.rx_pendings.alloc()
        if lower is None:
            yield from self._rx_exhausted(chunk, hdr, source, "pendings")
            return

        source.expect_rx_seq += 1
        if source.rejecting_from_seq is not None:
            source.rejecting_from_seq = None
            self.counters.incr("gobackn_recovered")
        if cfg.reliable_transport:
            # cumulative transport ack: everything through this seq is in
            yield from ppc.charge(cfg.fw_tx_cmd)
            self._send_transport_ack(hdr.src.nid, source.expect_rx_seq - 1)

        lower.kind = PendingKind.RX
        lower.state = "rx_header"
        lower.header = hdr
        lower.msg_id = chunk.msg_id
        lower.upper.header = hdr
        lower.upper.inline_data = hdr.inline_data
        source.rx_pending_list.append(lower)

        if proc.accelerated:
            yield from self._rx_request_accel(proc, lower, chunk, hdr)
        else:
            # Generic: copy header (and inline payload) to the host's
            # upper pending, post the event, raise the interrupt.
            yield from ppc.charge(cfg.fw_event_post + cfg.fw_interrupt_raise)
            proc.event_sink(
                FwEvent(
                    kind=FwEventKind.RX_HEADER,
                    pending_id=lower.pending_id,
                    header=hdr,
                    msg_id=chunk.msg_id,
                )
            )

    def _rx_request_accel(self, proc, lower, chunk, hdr):
        """Accelerated mode: matching on the NIC, no interrupts."""
        cfg = self.config
        ppc = self.seastar.ppc
        yield from ppc.charge(cfg.fw_match_overhead)
        result = match_request(proc.ni.table, hdr)
        mlist = proc.ni.table.match_list(hdr.ptl_index)
        if not result.matched:
            proc.ni.counters.incr("drops")
            self.counters.incr("accel_drops")
            if not chunk.is_last:
                self._program_discard(chunk.msg_id)
            if hdr.op is MsgType.GET:
                # the initiator is waiting on a reply: send a zero-length
                # one flagged as dropped (mirrors the generic kernel path)
                self._send_control(
                    op=MsgType.REPLY,
                    dst_node=hdr.src.nid,
                    dst_pid=hdr.src.pid,
                    initiator_ctx=hdr.initiator_ctx,
                    meta={"failed": True},
                )
            self._release_accel_pending(proc, lower)
            return
        start_events = commit_operation(mlist, result, hdr, started=True)
        for ev in start_events:
            yield from ppc.charge(cfg.fw_event_post)
            result.md.eq.post(ev)

        if hdr.op is MsgType.GET:
            data = result.md.region(result.offset, result.mlength)
            sent = self._send_control(
                op=MsgType.REPLY,
                dst_node=hdr.src.nid,
                dst_pid=hdr.src.pid,
                initiator_ctx=hdr.initiator_ctx,
                length=result.mlength,
                payload=data,
            )
            if not sent:
                self.counters.incr("accel_reply_drops")
            end_events = commit_operation(mlist, result, hdr, started=False)
            for ev in end_events:
                yield from ppc.charge(cfg.fw_event_post)
                result.md.eq.post(ev)
            self._release_accel_pending(proc, lower)
            return

        # PUT
        if hdr.inline_data is not None or hdr.length == 0:
            if result.mlength > 0:
                dest = result.md.region(result.offset, result.mlength)
                dest[:] = hdr.inline_data[: result.mlength]
                yield from ppc.charge(cfg.ht_write_latency)
            yield from self._accel_complete_put(proc, lower, hdr, result, mlist)
            return
        # Payload message: program the engine (even when truncation left
        # nothing to accept — the wire must drain), finish at deposit_done.
        yield from ppc.charge(cfg.fw_rx_dma_setup)
        dest = (
            result.md.region(result.offset, result.mlength)
            if result.mlength > 0
            else None
        )
        plan = DepositPlan(
            msg_id=lower.msg_id,
            dest=dest,
            accept_bytes=result.mlength,
            on_complete=lambda _p, a=(proc, lower, hdr, result, mlist): self.work.put(
                ("accel_deposit_done",) + a
            ),
            tag=lower,
        )
        assert self.seastar.rx is not None
        self.seastar.rx.program(plan)

    def _accel_complete_put(self, proc, lower, hdr, result, mlist):
        cfg = self.config
        ppc = self.seastar.ppc
        end_events = commit_operation(mlist, result, hdr, started=False)
        for ev in end_events:
            yield from ppc.charge(cfg.fw_event_post)
            result.md.eq.post(ev)
        if hdr.ack_req and result.md.eq is not None:
            from ..portals.constants import MDOptions

            if not (result.md.options & MDOptions.ACK_DISABLE):
                self._send_control(
                    op=MsgType.ACK,
                    dst_node=hdr.src.nid,
                    dst_pid=hdr.src.pid,
                    initiator_ctx=hdr.initiator_ctx,
                    meta={"mlength": result.mlength, "offset": result.offset},
                )
        self._release_accel_pending(proc, lower)

    def _handle_accel_deposit_done(self, proc, lower, hdr, result, mlist):
        yield from self.seastar.ppc.handler(self.config.fw_event_post)
        yield from self._accel_complete_put(proc, lower, hdr, result, mlist)

    def _release_accel_pending(self, proc, lower) -> None:
        src = self.control.lookup_source(lower.header.src.nid)
        if src is not None and lower in src.rx_pending_list:
            src.rx_pending_list.remove(lower)
        lower.reset()
        proc.rx_pendings.free(lower)

    def _rx_reply(self, chunk: WireChunk, hdr: PortalsHeader):
        cfg = self.config
        ppc = self.seastar.ppc
        lower = self._pendings.get(hdr.initiator_ctx)
        if lower is None or lower.state != "get_outstanding":
            self.counters.incr("orphan_replies")
            if not chunk.is_last:
                self._program_discard(chunk.msg_id)
            return
        proc = self.processes.get(lower.owner_pid)
        irq = 0 if proc.accelerated else cfg.fw_interrupt_raise
        if hdr.meta.get("failed"):
            lower.state = "reply_failed"
            yield from ppc.charge(cfg.fw_event_post + irq)
            proc.event_sink(
                FwEvent(
                    kind=FwEventKind.REPLY_COMPLETE,
                    pending_id=lower.pending_id,
                    header=hdr,
                    host_ctx=lower.upper.host_ctx,
                    mlength=0,
                    meta={"failed": True},
                )
            )
            return
        if hdr.inline_data is not None or hdr.length == 0:
            if hdr.length > 0:
                lower.reply_buffer[: hdr.length] = hdr.inline_data[: hdr.length]
                yield from ppc.charge(cfg.ht_write_latency)
            yield from self._complete_reply(proc, lower, hdr)
            return
        # Payload reply: the GET's own pending tracks the deposit — "the
        # lower pending structure can be set up immediately" without host
        # involvement.
        yield from ppc.charge(cfg.fw_rx_dma_setup)
        plan = DepositPlan(
            msg_id=chunk.msg_id,
            dest=lower.reply_buffer[: hdr.length],
            accept_bytes=hdr.length,
            on_complete=lambda _p, pr=proc, lo=lower, h=hdr: self.work.put(
                ("reply_done", pr, (lo, h))
            ),
            tag=lower,
        )
        assert self.seastar.rx is not None
        self.seastar.rx.program(plan)

    def _handle_reply_done(self, proc, payload):
        lower, hdr = payload
        yield from self.seastar.ppc.handler(0)
        yield from self._complete_reply(proc, lower, hdr)

    def _complete_reply(self, proc, lower, hdr):
        """Finish a GET at the initiator.

        When the host supplied a user EQ reference (generic mode), the
        firmware writes REPLY_END straight into process space — the
        initiator needs no Portals matching for a reply, so the
        completion interrupt is unnecessary (section 3.1: the firmware
        delivers "notifications to user-level event queues").  The
        kernel still gets a lazily-delivered bookkeeping event so the
        pending returns to the host pool on its next interrupt.
        """
        cfg = self.config
        ppc = self.seastar.ppc
        lower.state = "reply_done"
        if lower.direct_eq is not None and not proc.accelerated:
            yield from ppc.charge(cfg.fw_event_post)
            md = lower.md_ref
            if md is not None:
                md.pending_ops -= 1
            from ..portals.constants import EventKind as _EK
            from ..portals.constants import NIFailType as _NF
            from ..portals.events import PortalsEvent as _PE

            lower.direct_eq.post(
                _PE(
                    kind=_EK.REPLY_END,
                    initiator=hdr.src,
                    mlength=hdr.length,
                    rlength=lower.header.length if lower.header else hdr.length,
                    md_user_ptr=md.user_ptr if md is not None else None,
                    md_handle=md,
                    ni_fail_type=_NF.OK,
                )
            )
            proc.event_sink(
                FwEvent(
                    kind=FwEventKind.REPLY_COMPLETE,
                    pending_id=lower.pending_id,
                    header=hdr,
                    host_ctx=lower.upper.host_ctx,
                    mlength=hdr.length,
                    meta={"lazy": True, "direct_done": True},
                )
            )
            return
        irq = 0 if proc.accelerated else cfg.fw_interrupt_raise
        yield from ppc.charge(cfg.fw_event_post + irq)
        proc.event_sink(
            FwEvent(
                kind=FwEventKind.REPLY_COMPLETE,
                pending_id=lower.pending_id,
                header=hdr,
                host_ctx=lower.upper.host_ctx,
                mlength=hdr.length,
            )
        )

    def _rx_ack(self, chunk: WireChunk, hdr: PortalsHeader):
        cfg = self.config
        lower = self._pendings.get(hdr.initiator_ctx)
        if lower is None or lower.upper is None or lower.upper.host_ctx is None:
            self.counters.incr("orphan_acks")
            return
        # The host's terminal event is here: the retransmit record no
        # longer needs the peer monitor guarding its verdict.
        for (node, _seq), record in self._tx_history.items():
            if node == hdr.src.nid and record.lower is lower:
                record.ack_pending = False
                break
        proc = self.processes.get(lower.owner_pid)
        irq = 0 if proc.accelerated else cfg.fw_interrupt_raise
        yield from self.seastar.ppc.charge(cfg.fw_event_post + irq)
        proc.event_sink(
            FwEvent(
                kind=FwEventKind.ACK_RECEIVED,
                pending_id=lower.pending_id,
                header=hdr,
                host_ctx=lower.upper.host_ctx,
                mlength=hdr.meta.get("mlength", 0),
                offset=hdr.meta.get("offset", 0),
            )
        )

    # ------------------------------------------------------------------
    # Transmit completion
    # ------------------------------------------------------------------
    def _handle_tx_done(self, proc, lower: LowerPending):
        span = self._span(
            "fw.tx_done", msg_id=lower.msg_id if lower.msg_id > 0 else None
        )
        try:
            yield from self._tx_done_body(proc, lower)
        finally:
            self._span_end(span)

    def _tx_done_body(self, proc, lower: LowerPending):
        cfg = self.config
        ppc = self.seastar.ppc
        if lower in self.control.tx_pending_list:
            self.control.tx_pending_list.remove(lower)
        hdr = lower.header
        if hdr is not None and hdr.op is MsgType.GET:
            # The GET pending stays live until the reply consumes it.
            yield from ppc.handler(0)
            return
        if lower.state == "retransmit":
            # go-back-N replay: firmware-internal, no host notification
            yield from ppc.handler(cfg.fw_release_cmd)
            if lower.owner_pid == 0:
                self._recycle_internal(lower)
            return
        if (
            hdr is not None
            and hdr.op is MsgType.REPLY
            and lower.direct_event is not None
            and lower.direct_eq is not None
            and not proc.accelerated
        ):
            # Write GET_END straight into the target process's EQ; the
            # kernel reconciles (commit + pending recycle) lazily.
            yield from ppc.handler(cfg.fw_event_post)
            lower.direct_eq.post(lower.direct_event)
            proc.event_sink(
                FwEvent(
                    kind=FwEventKind.TX_COMPLETE,
                    pending_id=lower.pending_id,
                    header=hdr,
                    host_ctx=lower.upper.host_ctx if lower.upper else None,
                    meta={"lazy": True, "direct_done": True},
                    msg_id=lower.msg_id,
                )
            )
            return
        irq = 0 if (proc is not None and proc.accelerated) else cfg.fw_interrupt_raise
        yield from ppc.handler(cfg.fw_event_post + irq)
        proc.event_sink(
            FwEvent(
                kind=FwEventKind.TX_COMPLETE,
                pending_id=lower.pending_id,
                header=hdr,
                host_ctx=lower.upper.host_ctx if lower.upper else None,
                msg_id=lower.msg_id,
            )
        )

    # ------------------------------------------------------------------
    # Exhaustion and go-back-N
    # ------------------------------------------------------------------
    def _rx_exhausted(self, chunk: WireChunk, hdr: PortalsHeader, source, what: str):
        self.counters.incr(f"exhausted_{what}")
        if self.policy is ExhaustionPolicy.PANIC and what != "order":
            self.panicked = True
            raise NicPanic(
                f"node {self.node_id}: {what} pool exhausted by message from "
                f"{hdr.src} (the paper's current behaviour: panic the node)"
            )
        # go-back-N refusal
        yield from self.seastar.ppc.charge(self.config.fw_tx_cmd)
        if source is not None and source.rejecting_from_seq is None:
            source.rejecting_from_seq = hdr.wire_seq
        if not chunk.is_last:
            self._program_discard(chunk.msg_id)
        self.counters.incr("naks_sent")
        self._send_control(
            op=MsgType.NAK,
            dst_node=hdr.src.nid,
            dst_pid=hdr.src.pid,
            initiator_ctx=hdr.initiator_ctx,
            meta={"nak_seq": hdr.wire_seq, "nak_node": self.node_id},
        )

    def _tx_source_exhausted(self, proc, lower, hdr, payload, host_ctx) -> None:
        self.counters.incr("exhausted_tx_sources")
        if self.policy is ExhaustionPolicy.PANIC:
            self.panicked = True
            raise NicPanic(
                f"node {self.node_id}: source pool exhausted on transmit to "
                f"node {lower.dest_node}"
            )
        record = RetxRecord(
            seq=-1,
            dst_node=lower.dest_node,
            header=hdr,
            payload=payload,
            proc=proc,
            lower=lower,
            host_ctx=host_ctx,
            ack_pending=bool(hdr.ack_req),
        )
        self._queue_retransmit(record)

    def _record_history(self, record: RetxRecord) -> None:
        key = (record.dst_node, record.seq)
        self._tx_history[key] = record
        self._history_order.append(key)
        while len(self._history_order) > 1024:
            old = self._history_order.pop(0)
            self._tx_history.pop(old, None)

    def _rx_nak(self, chunk: WireChunk, hdr: PortalsHeader):
        yield from self.seastar.ppc.charge(self.config.fw_tx_cmd)
        self.counters.incr("naks_received")
        seq = hdr.meta.get("nak_seq")
        node = hdr.meta.get("nak_node")
        record = self._tx_history.get((node, seq))
        if record is None:
            self.counters.incr("nak_unmatched")
            return
        self._queue_retransmit(record)

    def _send_transport_ack(self, dst_node: int, through_seq: int) -> None:
        """Send a cumulative SACK: requests through ``through_seq`` are in.

        Control-pool exhaustion just drops it — the sender's watchdog
        retransmits and the duplicate path re-SACKs later.
        """
        sent = self._send_control(
            op=MsgType.SACK,
            dst_node=dst_node,
            dst_pid=0,
            initiator_ctx=None,
            meta={"ack_through": through_seq, "ack_node": self.node_id},
        )
        if sent:
            self.counters.incr("sacks_sent")

    def _rx_sack(self, hdr: PortalsHeader):
        yield from self.seastar.ppc.charge(self.config.fw_release_cmd)
        self.counters.incr("sacks_received")
        node = hdr.meta.get("ack_node")
        through = hdr.meta.get("ack_through", -1)
        if node is None:
            return
        if through > self._acked_through.get(node, -1):
            self._acked_through[node] = through
        for (dst, seq), record in self._tx_history.items():
            if dst == node and seq <= through:
                record.acked = True

    def _handle_transport_error(self, hdr: Optional[PortalsHeader], reason: str):
        """A message failed the end-to-end 32-bit CRC (or lost chunks).

        The RX path detected damage before anything reached Portals;
        charge the CRC-verdict handler and NAK the sender so go-back-N
        replays the message.  ``hdr`` is None when the header chunk
        itself was lost — then only the sender's watchdog can recover.
        """
        cfg = self.config
        yield from self.seastar.ppc.handler(cfg.fw_crc_check)
        self.counters.incr("crc_errors" if reason == "corrupt" else "transport_losses")
        self._trace(
            "fw.transport_error",
            reason=reason,
            op=hdr.op.value if hdr is not None else None,
            src=hdr.src.nid if hdr is not None else None,
        )
        if hdr is None:
            self.counters.incr("headerless_losses")
            return
        if (
            hdr.op in (MsgType.PUT, MsgType.GET)
            and self.policy is ExhaustionPolicy.GO_BACK_N
        ):
            source = self.control.lookup_source(hdr.src.nid)
            if source is not None and hdr.wire_seq < source.expect_rx_seq:
                # a damaged *duplicate* of something already accepted:
                # don't NAK backwards, just restate where we are
                if cfg.reliable_transport:
                    self._send_transport_ack(hdr.src.nid, source.expect_rx_seq - 1)
                return
            self.counters.incr("naks_sent")
            self._send_control(
                op=MsgType.NAK,
                dst_node=hdr.src.nid,
                dst_pid=hdr.src.pid,
                initiator_ctx=hdr.initiator_ctx,
                meta={"nak_seq": hdr.wire_seq, "nak_node": self.node_id},
            )
        else:
            # damaged control traffic (ACK/NAK/SACK/REPLY) carries no
            # wire_seq; timers and duplicate re-SACKs absorb the loss
            self.counters.incr("control_message_losses")

    def _backoff_delay(self, attempt: int, base: Optional[int] = None) -> int:
        """Exponential retransmit backoff: ``base * factor**attempt``.

        Capped by ``gobackn_backoff_max`` (but never below ``base``, so
        callers with a large size-scaled base still wait at least one
        expected round trip)."""
        cfg = self.config
        if base is None:
            base = cfg.gobackn_backoff
        delay = int(base * cfg.gobackn_backoff_factor ** min(attempt, 32))
        return min(delay, max(base, cfg.gobackn_backoff_max))

    def _expected_wire_time(self, length: int) -> int:
        """Rough lower bound on one message's transmit+wire time (ps)."""
        cfg = self.config
        npackets = 1 + cfg.packets_for(length)
        return npackets * cfg.bottleneck_per_packet()

    def _ack_watchdog(self, record: RetxRecord):
        """Reliable transport: retransmit on timeout until SACKed.

        The base delay scales with the message's expected wire time (a
        64 KB message takes longer to arrive than a SACK round trip) and
        grows exponentially with each attempt.  Terminates as soon as
        the record is acked or declared failed, so a run always drains.
        """
        cfg = self.config
        base = cfg.retransmit_timeout + 2 * self._expected_wire_time(
            record.header.length
        )
        attempt = 0
        while True:
            yield self._backoff_delay(attempt, base)
            if record.acked or record.failed:
                return
            if self._dead:
                # this firmware crashed for good; without the exit the
                # watchdog would retransmit forever and the run would
                # never drain
                return
            if record.seq <= self._acked_through.get(record.dst_node, -1):
                record.acked = True
                return
            attempt += 1
            self.counters.incr("timeout_retransmits")
            self._queue_retransmit(record)

    def _queue_retransmit(self, record: RetxRecord) -> None:
        if record.acked or record.failed:
            return
        queue = self._retx_queues.setdefault(record.dst_node, [])
        if record not in queue:
            queue.append(record)
        if record.dst_node not in self._retx_scheduled:
            self._retx_scheduled.add(record.dst_node)
            delay = self._backoff_delay(record.retries)
            self.sim.process(self._retx_timer(record.dst_node, delay))

    def _retx_timer(self, dst_node: int, delay: int):
        yield delay
        self.counters.incr("backoff_time_ps", delay)
        self.work.put(("retransmit_flush", dst_node))

    def _handle_retransmit_flush(self, dst_node: int):
        cfg = self.config
        self._retx_scheduled.discard(dst_node)
        queue = self._retx_queues.pop(dst_node, [])
        queue.sort(key=lambda r: r.seq)
        for record in queue:
            if record.acked or record.failed:
                # SACKed (or already failed) while waiting out the
                # backoff: nothing to replay
                self.counters.incr("retransmits_suppressed")
                continue
            yield from self.seastar.ppc.handler(cfg.fw_tx_cmd)
            record.retries += 1
            if record.retries > cfg.gobackn_max_retries:
                # latch the failure so the host sees exactly one
                # SEND_FAILED per message no matter how many NAKs or
                # timeouts still reference the record
                record.failed = True
                self.counters.incr("gobackn_failures")
                record.proc.event_sink(
                    FwEvent(
                        kind=FwEventKind.SEND_FAILED,
                        pending_id=record.lower.pending_id if record.lower else -1,
                        header=record.header,
                        host_ctx=record.host_ctx,
                    )
                )
                continue
            self.counters.incr("retransmits")
            lower = record.lower
            if lower is None or lower.state == "free":
                # The original pending was already recycled (PUT completed
                # from the TX side's view); replay from an internal one.
                lower = self.internal_pool.alloc()
                if lower is None:
                    self._queue_retransmit(record)
                    continue
                lower.kind = PendingKind.TX
                lower.state = "retransmit"
                lower.header = record.header
                lower.dest_node = record.dst_node
                lower.upper.host_ctx = record.host_ctx
                record.lower = lower
            if record.seq < 0:
                # Deferred first transmission (source exhaustion on TX).
                # The attempt supersedes this placeholder record: a
                # successful transmit records fresh history under the
                # real seq, a re-exhaustion queues a fresh placeholder.
                record.acked = True
                self._transmit_request(
                    record.proc, lower, record.header, record.payload, record.host_ctx
                )
            else:
                # Replays are firmware-internal: the host already saw its
                # local completion; don't notify it again at tx_done.
                if record.header.op is not MsgType.GET:
                    lower.state = "retransmit"
                record.header.inline_data = None
                self._submit(record.proc, lower, record.header, record.payload)

    # ------------------------------------------------------------------
    # Crash injection and peer-death detection (chaos campaigns)
    # ------------------------------------------------------------------
    def crash(self, restart_after: Optional[int] = None) -> None:
        """Stop the embedded PowerPC at work-item granularity.

        ``restart_after=None`` is permanent (node death): the main loop
        parks forever on the next work item and arriving traffic queues
        unprocessed.  A positive value models the NIC watchdog rebooting
        the firmware after that many ps — SRAM state survives the reset,
        so the go-back-N sequence space stays coherent and queued work
        simply drains late.
        """
        self.counters.incr("fw_crashes")
        if restart_after is None:
            self._dead = True
        else:
            self._crash_until = self.sim.now + restart_after
        self._trace("fw.crash", restart_after=restart_after)

    def enable_peer_monitor(self, timeout_ps: int) -> None:
        """Arm passive peer-liveness detection.

        There is no explicit heartbeat message (a perpetual ticker would
        keep the event heap alive forever and the simulation would never
        drain): the reliable transport's SACK stream *is* the liveness
        signal.  While this node holds unacked traffic for a peer, a
        watch process polls; ``timeout_ps`` of SACK silence declares the
        peer dead and fails every outstanding message exactly once.
        """
        if timeout_ps <= 0:
            raise ValueError("peer monitor timeout must be > 0")
        self._peer_timeout = timeout_ps

    def _ensure_peer_watch(self, dst: int) -> None:
        if dst in self._peer_watches or dst in self._peer_dead:
            return
        self._peer_watches.add(dst)
        self._peer_last_heard.setdefault(dst, self.sim.now)
        self.sim.process(
            self._watch_peer(dst), name=f"fw:peerwatch:{self.node_id}:{dst}"
        )

    def _live_records_to(self, dst: int) -> bool:
        """Any record toward ``dst`` still owed a terminal verdict?

        Unacked data is live; so is SACKed data whose Portals ACK has
        not come back (``ack_pending``) — losing that ACK to a dead link
        must not strand the host without a terminal event.
        """
        for (node, _seq), record in self._tx_history.items():
            if node != dst or record.failed:
                continue
            if not record.acked or record.ack_pending:
                return True
        return False

    def _watch_peer(self, dst: int):
        """Poll SACK recency while traffic to ``dst`` is outstanding.

        Exits as soon as nothing is owed (so a run always drains) or the
        peer is declared dead; new sends re-arm the watch.
        """
        timeout = self._peer_timeout
        assert timeout is not None
        poll = max(1, timeout // 4)
        try:
            while True:
                yield poll
                if self._dead or dst in self._peer_dead:
                    return
                if not self._live_records_to(dst):
                    return
                if self.sim.now - self._peer_last_heard.get(dst, 0) >= timeout:
                    self.work.put(("peer_dead", dst))
                    return
        finally:
            self._peer_watches.discard(dst)

    def _handle_peer_dead(self, node: int):
        """Declare ``node`` dead: fail all outstanding traffic to it.

        Idempotent — records fully resolved (SACKed with the Portals ACK
        in hand, or already failed) in the window between the watch
        firing and this handler running are skipped, and the
        ``acked``/``failed`` latches keep the host's view at exactly one
        terminal event per message.  Records still awaiting an ACK are
        swept even when the data was SACKed: the ACK died with the link.
        """
        cfg = self.config
        yield from self.seastar.ppc.handler(cfg.fw_tx_cmd)
        if node in self._peer_dead:
            return
        self._peer_dead.add(node)
        self.peer_death_times[node] = self.sim.now
        self.counters.incr("peer_deaths_detected")
        self._trace("fw.peer_dead", peer=node)
        for (dst, _seq), record in list(self._tx_history.items()):
            if dst != node or record.failed:
                continue
            if record.acked and not record.ack_pending:
                continue
            # A SACKed record with ack_pending set lost its Portals ACK
            # to the dead link: the data landed, but the initiator does
            # not know it.  PTL_NI_FAIL ("not known to be delivered") is
            # the honest exactly-once verdict.
            record.failed = True
            self.counters.incr("peer_death_failures")
            yield from self.seastar.ppc.charge(cfg.fw_event_post)
            record.proc.event_sink(
                FwEvent(
                    kind=FwEventKind.SEND_FAILED,
                    pending_id=record.lower.pending_id if record.lower else -1,
                    header=record.header,
                    host_ctx=record.host_ctx,
                )
            )

    # ------------------------------------------------------------------
    # Generic deposit completion
    # ------------------------------------------------------------------
    def _handle_deposit_done(self, proc, lower: LowerPending):
        cfg = self.config
        span = self._span(
            "fw.rx_complete", msg_id=lower.msg_id if lower.msg_id > 0 else None
        )
        irq = 0 if proc.accelerated else cfg.fw_interrupt_raise
        yield from self.seastar.ppc.handler(cfg.fw_event_post + irq)
        lower.state = "rx_done"
        proc.event_sink(
            FwEvent(
                kind=FwEventKind.RX_COMPLETE,
                pending_id=lower.pending_id,
                header=lower.header,
                msg_id=lower.msg_id,
            )
        )
        self._span_end(span)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats_snapshot(self) -> dict:
        """Firmware counters + pool occupancy (NicStatsCmd result)."""
        return {
            "counters": self.counters.snapshot(),
            "heartbeat": self.control.heartbeat,
            "sources_in_use": self.control.sources.in_use,
            "sources_high_water": self.control.sources.high_water,
            "sram_used": self.seastar.sram.used_bytes,
            "sram_free": self.seastar.sram.free_bytes,
        }
