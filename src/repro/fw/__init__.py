"""The SeaStar firmware model (sections 4.1-4.3 of the paper)."""

from .commands import (
    FwEvent,
    FwEventKind,
    InitProcessCmd,
    NicStatsCmd,
    ReleasePendingCmd,
    RxDepositCmd,
    TxAckCmd,
    TxGetCmd,
    TxPutCmd,
    TxReplyCmd,
)
from .firmware import ExhaustionPolicy, Firmware, RetxRecord
from .mailbox import CommandFifo, Mailbox, ResultFifo
from .structs import (
    FreeList,
    FwProcess,
    LowerPending,
    NicControlBlock,
    PendingKind,
    Source,
    UpperPending,
)

__all__ = [
    "Firmware",
    "ExhaustionPolicy",
    "RetxRecord",
    "Mailbox",
    "CommandFifo",
    "ResultFifo",
    "FreeList",
    "FwProcess",
    "LowerPending",
    "UpperPending",
    "NicControlBlock",
    "PendingKind",
    "Source",
    "FwEvent",
    "FwEventKind",
    "TxPutCmd",
    "TxGetCmd",
    "TxReplyCmd",
    "TxAckCmd",
    "RxDepositCmd",
    "ReleasePendingCmd",
    "InitProcessCmd",
    "NicStatsCmd",
]
