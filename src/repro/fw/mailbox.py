"""Firmware mailboxes: command and result FIFOs.

Each firmware-level process (the kernel's generic Portals implementation,
and every accelerated process) owns one mailbox containing a command FIFO
and a result FIFO (Figure 2).  The host posts a command by writing it and
bumping the tail index — one posted HT write; the firmware consumes at the
head.  Commands that return a value make the host busy-wait on the result
FIFO; commands that don't (e.g. transmit) can be streamed back-to-back,
which is exactly why transmit returns no immediate result (footnote 1 of
the paper).
"""

from __future__ import annotations

from typing import Any, Generator

from ..sim import Channel, Counters, Event, Simulator

__all__ = ["CommandFifo", "ResultFifo", "Mailbox"]


class CommandFifo:
    """Host -> firmware command ring.

    Modeled as an unbounded channel with head/tail accounting; the real
    ring's bound shows up as the pending-pool limits instead (a command
    cannot be issued without a pending to name).
    """

    def __init__(self, sim: Simulator, name: str = ""):
        self.sim = sim
        self._chan = Channel(sim, name=name)
        self.head = 0
        self.tail = 0
        self.m_depth = None
        """Optional metrics :class:`~repro.metrics.Gauge` sampling the
        posted-but-unconsumed depth on every post/consume."""

    def post(self, command: Any) -> None:
        """Host side: append ``command`` and bump the tail index."""
        self.tail += 1
        self._chan.put(command)
        if self.m_depth is not None:
            self.m_depth.sample(self.sim.now, self.tail - self.head)

    def get(self) -> Event:
        """Firmware side: event yielding the next command in order."""
        return self._chan.get()

    def consumed(self) -> None:
        """Firmware side: advance the head index after handling."""
        self.head += 1
        if self.m_depth is not None:
            self.m_depth.sample(self.sim.now, self.tail - self.head)

    @property
    def depth(self) -> int:
        """Commands posted but not yet consumed."""
        return self.tail - self.head


class ResultFifo:
    """Firmware -> host result ring (host busy-waits on it)."""

    def __init__(self, sim: Simulator, name: str = ""):
        self._chan = Channel(sim, name=name)

    def post(self, result: Any) -> None:
        """Firmware side: deliver a result."""
        self._chan.put(result)

    def wait(self) -> Event:
        """Host side: event yielding the next result (busy-wait)."""
        return self._chan.get()


class Mailbox:
    """One process's command + result FIFO pair."""

    def __init__(self, sim: Simulator, name: str = ""):
        self.sim = sim
        self.name = name
        self.commands = CommandFifo(sim, name=f"{name}:cmd")
        self.results = ResultFifo(sim, name=f"{name}:res")
        self.stats = Counters()

    def post_command(self, command: Any) -> None:
        """Host side: stream one command (no result expected)."""
        self.stats.incr("commands")
        self.commands.post(command)

    def post_command_await_result(self, command: Any) -> Generator:
        """Host side coroutine: post and busy-wait for the result."""
        self.stats.incr("commands")
        self.stats.incr("synchronous_commands")
        self.commands.post(command)
        result = yield self.results.wait()
        return result
