"""Host -> firmware commands and firmware -> host events.

Commands mirror section 4.3: transmit commands name a pending id, target
node, payload location and length (plus pre-computed per-page DMA
commands for non-contiguous Linux buffers); receive commands name the
pending, the deposit address and how many bytes to accept (the rest
implicitly discarded); release-pending returns an RX pending to the
firmware's free list.

Firmware events are what the host's interrupt handler (generic) or the
user-level library's poll (accelerated) consumes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

from ..portals.header import PortalsHeader, ProcessId

__all__ = [
    "TxPutCmd",
    "TxGetCmd",
    "TxReplyCmd",
    "TxAckCmd",
    "RxDepositCmd",
    "ReleasePendingCmd",
    "InitProcessCmd",
    "NicStatsCmd",
    "FwEventKind",
    "FwEvent",
]


@dataclass(eq=False)
class TxPutCmd:
    """Transmit a PUT.  Streamed (no immediate result)."""

    pending_id: int
    target: ProcessId
    ptl_index: int
    match_bits: int
    payload: Optional[np.ndarray]
    length: int
    remote_offset: int = 0
    hdr_data: int = 0
    ack_req: bool = False
    host_ctx: Any = None
    dma_commands: int = 1
    """Pre-computed DMA command count (pages for Linux buffers; 1 for
    physically contiguous Catamount memory)."""


@dataclass(eq=False)
class TxGetCmd:
    """Transmit a GET request; ``reply_buffer`` is where the reply lands."""

    pending_id: int
    target: ProcessId
    ptl_index: int
    match_bits: int
    length: int
    reply_buffer: Optional[np.ndarray]
    remote_offset: int = 0
    host_ctx: Any = None
    dma_commands: int = 1
    direct_eq: Any = None
    """User EQ for firmware-direct REPLY_END delivery (no initiator-side
    interrupt on the reply)."""

    md_ref: Any = None
    """Initiating MD, for the completion event's md fields."""


@dataclass(eq=False)
class TxReplyCmd:
    """Transmit a GET reply (target side, generic mode: issued by the
    kernel after matching)."""

    pending_id: int
    target: ProcessId
    initiator_ctx: int
    payload: Optional[np.ndarray]
    length: int
    host_ctx: Any = None
    dma_commands: int = 1
    failed: bool = False
    """Set when the GET did not match: the initiator receives a
    zero-length reply flagged as dropped."""

    direct_eq: Any = None
    """Target-side user EQ for firmware-direct GET_END delivery when the
    reply finishes transmitting (saves the completion interrupt)."""

    direct_event: Any = None
    """Pre-built GET_END event the firmware posts into ``direct_eq``."""


@dataclass(eq=False)
class TxAckCmd:
    """Transmit a PUT acknowledgement."""

    pending_id: int
    target: ProcessId
    initiator_ctx: int
    mlength: int
    offset: int
    host_ctx: Any = None


@dataclass(eq=False)
class RxDepositCmd:
    """Program the deposit of a received message's payload.

    ``dest=None`` discards everything (unmatched/dropped messages still
    have to drain off the wire)."""

    pending_id: int
    dest: Optional[np.ndarray]
    accept_bytes: int
    dma_commands: int = 1


@dataclass(eq=False)
class ReleasePendingCmd:
    """Host is done with an RX upper pending; recycle the pair."""

    pending_id: int


@dataclass(eq=False)
class InitProcessCmd:
    """Administrative: (re)announce a host process (returns a result)."""

    host_pid: int


@dataclass(eq=False)
class NicStatsCmd:
    """Administrative: fetch firmware counters (returns a result)."""


class FwEventKind(enum.Enum):
    """Firmware event types posted to host event queues."""

    TX_COMPLETE = "tx_complete"
    RX_HEADER = "rx_header"
    RX_COMPLETE = "rx_complete"
    REPLY_COMPLETE = "reply_complete"
    ACK_RECEIVED = "ack_received"
    SEND_FAILED = "send_failed"
    """Go-back-N gave up after max retries."""


@dataclass(eq=False)
class FwEvent:
    """One firmware event (small enough to post atomically, section 4.1)."""

    kind: FwEventKind
    pending_id: int = -1
    header: Optional[PortalsHeader] = None
    host_ctx: Any = None
    mlength: int = 0
    offset: int = 0
    meta: dict = field(default_factory=dict)
    msg_id: int = -1
    """Wire message id, carried through so host-side trace spans can be
    correlated with the firmware/wire spans of the same message."""
