"""Firmware data structures (Figure 3 of the paper).

* :class:`LowerPending` — in SeaStar SRAM; everything the firmware needs
  to progress one message.
* :class:`UpperPending` — the 1-1 mapped host-memory half; everything the
  *host* needs about the message.  The firmware only ever writes it
  (reading across HT is a costly round trip).
* :class:`Source` — per-peer-node state: the RX pending list and, for the
  go-back-N extension, sequencing state.
* :class:`FwProcess` — one firmware-level process (the generic kernel
  implementation, or an accelerated application) with its mailbox, event
  sink and two pending pools (RX managed by firmware, TX managed by the
  host).
* :class:`NicControlBlock` — the single global block: source free list and
  hash, TX pending list, counters.

There is **no dynamic allocation**: pools are fixed at init and carved
from the 384 KB SRAM allocator, so exhaustion is a real, observable
condition (section 4.3).
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

import numpy as np

from ..portals.header import PortalsHeader
from ..sim import Counters

__all__ = [
    "PendingKind",
    "LowerPending",
    "UpperPending",
    "Source",
    "FwProcess",
    "NicControlBlock",
    "FreeList",
]


class FreeList:
    """A fixed pool of pre-allocated structures.

    ``alloc`` returns None when empty — the caller decides between panic
    and go-back-N recovery.  Statistics track the high-water mark so runs
    can verify the paper's observation that usage never approached
    dangerous levels.
    """

    def __init__(self, items: list, name: str = ""):
        self.name = name
        self.capacity = len(items)
        self._free = deque(items)
        self.high_water = 0

    def alloc(self):
        """Take one item, or None when exhausted."""
        if not self._free:
            return None
        item = self._free.popleft()
        in_use = self.capacity - len(self._free)
        if in_use > self.high_water:
            self.high_water = in_use
        return item

    def free(self, item) -> None:
        """Return one item to the pool."""
        if len(self._free) >= self.capacity:
            raise RuntimeError(f"free list {self.name!r} over-freed")
        self._free.append(item)

    @property
    def available(self) -> int:
        """Items currently free."""
        return len(self._free)

    @property
    def in_use(self) -> int:
        """Items currently allocated."""
        return self.capacity - len(self._free)


class PendingKind(enum.Enum):
    """What a pending structure is tracking."""

    TX = "tx"
    RX = "rx"


@dataclass(eq=False)
class UpperPending:
    """Host-memory half of a pending (1-1 mapped with the lower half)."""

    pending_id: int
    header: Optional[PortalsHeader] = None
    inline_data: Optional[np.ndarray] = None
    host_ctx: Any = None
    """Opaque host-side context (the kernel's in-flight operation record
    or the accelerated library's MD reference)."""


@dataclass(eq=False)
class LowerPending:
    """SRAM half of a pending: progression state + buffer info."""

    pending_id: int
    owner_pid: int
    kind: Optional[PendingKind] = None
    state: str = "free"
    header: Optional[PortalsHeader] = None
    buffer: Optional[np.ndarray] = None
    """TX: source payload view.  RX (replies): deposit destination."""

    reply_buffer: Optional[np.ndarray] = None
    """GET pendings: where the reply payload must land."""

    direct_eq: Any = None
    """GET pendings (generic mode): the user-level event queue the
    firmware writes REPLY_END into directly — no matching is needed at
    the initiator, so no interrupt is either (section 3.1: the firmware
    delivers "notifications to user-level event queues")."""

    md_ref: Any = None
    """GET pendings: the initiating MD, echoed into the completion event."""

    direct_event: Any = None
    """REPLY pendings: pre-built GET_END the firmware posts into
    ``direct_eq`` when the reply has been sent."""

    msg_id: int = 0
    dest_node: int = -1
    retries: int = 0
    upper: Optional[UpperPending] = None

    def reset(self) -> None:
        """Scrub for return to the free list."""
        self.kind = None
        self.state = "free"
        self.header = None
        self.buffer = None
        self.reply_buffer = None
        self.direct_eq = None
        self.md_ref = None
        self.direct_event = None
        self.msg_id = 0
        self.dest_node = -1
        self.retries = 0
        if self.upper is not None:
            self.upper.header = None
            self.upper.inline_data = None
            self.upper.host_ctx = None


@dataclass(eq=False)
class Source:
    """Per-peer-node state (one pool for the whole firmware)."""

    src_node: int = -1
    rx_pending_list: deque = field(default_factory=deque)
    active: bool = False

    # go-back-N sequencing (message-level)
    next_tx_seq: int = 0
    """Next wire sequence this node will assign when *sending to* the
    peer (kept here on the sending side's source struct for the peer)."""

    expect_rx_seq: int = 0
    """Next request sequence expected *from* the peer."""

    rejecting_from_seq: Optional[int] = None
    """While recovering, the first sequence that was NACKed; later
    sequences are also refused until the sender rolls back."""

    def reset(self) -> None:
        """Scrub for return to the free list (sequence state survives a
        reallocation for the same peer only because lookups are hashed by
        node; a recycled struct starts clean)."""
        self.src_node = -1
        self.rx_pending_list.clear()
        self.active = False
        self.next_tx_seq = 0
        self.expect_rx_seq = 0
        self.rejecting_from_seq = None


@dataclass(eq=False)
class FwProcess:
    """One firmware-level process (Figure 2's mailbox owners)."""

    fw_pid: int
    host_pid: int
    accelerated: bool
    mailbox: Any
    event_sink: Callable[[Any], None]
    """Deliver one firmware event to this process's host-side event queue
    (the kernel EQ for generic, the user EQ machinery for accelerated)."""

    tx_pendings: FreeList = None  # type: ignore[assignment]
    rx_pendings: FreeList = None  # type: ignore[assignment]
    upper_table: dict[int, UpperPending] = field(default_factory=dict)
    ni: Any = None
    """Accelerated only: the process's NetworkInterface for firmware-side
    matching."""

    stats: Counters = field(default_factory=Counters)


@dataclass(eq=False)
class NicControlBlock:
    """The single global firmware control block."""

    sources: FreeList = None  # type: ignore[assignment]
    source_hash: dict[int, Source] = field(default_factory=dict)
    tx_pending_list: deque = field(default_factory=deque)
    heartbeat: int = 0
    counters: Counters = field(default_factory=Counters)

    def lookup_source(self, node: int) -> Optional[Source]:
        """Hash-table lookup of the source struct for ``node``."""
        return self.source_hash.get(node)

    def attach_source(self, node: int) -> Optional[Source]:
        """Find-or-allocate the source struct for ``node``.

        Returns None when the source pool is exhausted.
        """
        src = self.source_hash.get(node)
        if src is not None:
            return src
        src = self.sources.alloc()
        if src is None:
            return None
        src.src_node = node
        src.active = True
        self.source_hash[node] = src
        return src
