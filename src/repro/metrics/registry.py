"""Machine-wide metrics registry with typed instruments.

Four instrument kinds cover every component the simulator models:

* :class:`MetricCounter` — monotonic event counts (packets, traps, hops);
* :class:`Gauge` — sampled level series (FIFO depth, SRAM bytes in use),
  summarized with *time-weighted* statistics;
* :class:`Timeline` — busy/occupancy intervals on the simulated clock
  (DMA engines, HyperTransport cave, PPC firmware, wire links), the
  basis for utilization attribution;
* :class:`Histogram` — fixed-bucket distributions (message sizes).

Instrumentation sites follow the same zero-cost-when-disabled contract
as :class:`repro.sim.monitor.SpanTracer`: components hold ``None`` by
default and only append to plain Python lists when an instrument is
attached.  No instrument ever schedules a simulation event, so enabling
metrics cannot move simulated time — benchmark results stay
bit-identical with metrics on or off.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Any, Dict, List, Optional, Sequence

from ..sim.core import Simulator
from ..sim.monitor import TimeSeries

__all__ = [
    "MetricCounter",
    "Gauge",
    "Timeline",
    "Histogram",
    "MetricsRegistry",
]


class MetricCounter:
    """A named monotonic counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def incr(self, amount: int = 1) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r}: negative increment")
        self.value += amount


class Gauge:
    """A sampled level, backed by a :class:`TimeSeries`.

    Summaries use step-function (time-weighted) semantics: the sampled
    value holds until the next sample.  That is the right average for
    occupancy-style series — FIFO depth, SRAM bytes in use — where a
    plain sample mean would over-weight bursts of rapid changes.
    """

    __slots__ = ("name", "series")

    def __init__(self, name: str):
        self.name = name
        self.series = TimeSeries(name)

    def sample(self, time: int, value: float) -> None:
        """Record the gauge level at ``time``."""
        self.series.sample(time, value)

    def __len__(self) -> int:
        return len(self.series)

    @property
    def last(self) -> float:
        """Most recent sampled value; raises ValueError when empty."""
        self.series._require_samples()
        return self.series.values[-1]

    def summary(self, until: Optional[int] = None) -> Dict[str, Any]:
        """Summary statistics (time-weighted mean, min/max/last)."""
        if not len(self.series):
            return {"samples": 0}
        return {
            "samples": len(self.series),
            "last": self.series.values[-1],
            "min": self.series.min,
            "max": self.series.max,
            "time_weighted_mean": self.series.time_weighted_mean(until=until),
        }


class Timeline:
    """Busy intervals ``[t0, t1)`` on the simulated clock.

    Instrumentation appends the interval when the work *completes*
    (``add(now - cost, now)``).  Serialized engines therefore append in
    nondecreasing start order, which :meth:`busy_between` exploits via
    bisection; intervals never overlap on a capacity-1 engine.
    """

    __slots__ = ("name", "starts", "ends")

    def __init__(self, name: str):
        self.name = name
        self.starts: List[int] = []
        self.ends: List[int] = []

    def add(self, t0: int, t1: int) -> None:
        """Append one busy interval (``t0 <= t1``)."""
        self.starts.append(t0)
        self.ends.append(t1)

    def __len__(self) -> int:
        return len(self.starts)

    def busy_total(self) -> int:
        """Total busy picoseconds across all intervals."""
        return sum(self.ends) - sum(self.starts)

    def busy_between(self, w0: int, w1: int) -> int:
        """Exact busy overlap with the window ``[w0, w1)``.

        Intervals straddling a window edge contribute only the part
        inside the window.
        """
        if w1 <= w0:
            return 0
        starts, ends = self.starts, self.ends
        total = 0
        for i in range(bisect_right(ends, w0), len(starts)):
            s = starts[i]
            if s >= w1:
                break
            total += min(ends[i], w1) - max(s, w0)
        return total

    def utilization(self, w0: int, w1: int) -> float:
        """Busy fraction of the window ``[w0, w1)``."""
        if w1 <= w0:
            return 0.0
        return self.busy_between(w0, w1) / (w1 - w0)


class Histogram:
    """Fixed-bucket histogram with ascending upper-bound ``edges``.

    An observation lands in the first bucket whose edge is ``>= value``
    (Prometheus ``le`` semantics); values above the last edge land in
    the overflow bucket, so ``counts`` has ``len(edges) + 1`` entries.
    """

    __slots__ = ("name", "edges", "counts", "count", "sum")

    def __init__(self, name: str, edges: Sequence[float]):
        if not edges:
            raise ValueError(f"histogram {name!r}: needs at least one edge")
        if list(edges) != sorted(edges) or len(set(edges)) != len(edges):
            raise ValueError(f"histogram {name!r}: edges must be strictly ascending")
        self.name = name
        self.edges: List[float] = list(edges)
        self.counts: List[int] = [0] * (len(edges) + 1)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.counts[bisect_left(self.edges, value)] += 1
        self.count += 1
        self.sum += value


class MetricsRegistry:
    """Get-or-create factory and catalogue for all instruments.

    One registry serves the whole machine; components receive their
    instruments from the machine builder (see ``Machine(metrics=True)``)
    and the registry stays the single place to snapshot or export them.
    Names are namespaced by convention: ``node{N}.{component}.{what}``
    for per-node instruments, ``wire.{src}->{dst}.busy`` for fabric
    pipes.  Attribution keys off the ``.busy`` timeline suffix.
    """

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._instruments: Dict[str, Any] = {}

    def _get_or_create(self, name: str, kind: type, *args: Any) -> Any:
        inst = self._instruments.get(name)
        if inst is None:
            inst = kind(name, *args)
            self._instruments[name] = inst
            return inst
        if not isinstance(inst, kind):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(inst).__name__}, not {kind.__name__}"
            )
        return inst

    def counter(self, name: str) -> MetricCounter:
        """Get or create the counter ``name``."""
        return self._get_or_create(name, MetricCounter)

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge ``name``."""
        return self._get_or_create(name, Gauge)

    def timeline(self, name: str) -> Timeline:
        """Get or create the busy timeline ``name``."""
        return self._get_or_create(name, Timeline)

    def histogram(self, name: str, edges: Sequence[float]) -> Histogram:
        """Get or create the histogram ``name`` (edges must match)."""
        hist = self._get_or_create(name, Histogram, edges)
        if hist.edges != list(edges):
            raise ValueError(
                f"histogram {name!r} already registered with different edges"
            )
        return hist

    def names(self) -> List[str]:
        """All registered instrument names, sorted."""
        return sorted(self._instruments)

    def get(self, name: str) -> Optional[Any]:
        """The instrument registered under ``name``, or None."""
        return self._instruments.get(name)

    def instruments(self) -> Dict[str, Any]:
        """Live name → instrument mapping (read-only by convention)."""
        return self._instruments

    def timelines(self) -> Dict[str, Timeline]:
        """All registered timelines by name."""
        return {n: i for n, i in self._instruments.items() if isinstance(i, Timeline)}

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready summary of every instrument.

        Timelines report interval count, total busy ps and whole-run
        utilization (vs ``sim.now``); gauges report time-weighted
        statistics; histograms report edges/counts/sum.
        """
        now = self.sim.now
        counters: Dict[str, int] = {}
        gauges: Dict[str, Any] = {}
        timelines: Dict[str, Any] = {}
        histograms: Dict[str, Any] = {}
        for name in sorted(self._instruments):
            inst = self._instruments[name]
            if isinstance(inst, MetricCounter):
                counters[name] = inst.value
            elif isinstance(inst, Gauge):
                gauges[name] = inst.summary(until=now)
            elif isinstance(inst, Timeline):
                busy = inst.busy_total()
                timelines[name] = {
                    "intervals": len(inst),
                    "busy_ps": busy,
                    "utilization": (busy / now) if now > 0 else 0.0,
                }
            elif isinstance(inst, Histogram):
                histograms[name] = {
                    "edges": inst.edges,
                    "counts": inst.counts,
                    "count": inst.count,
                    "sum": inst.sum,
                }
        return {
            "now_ps": now,
            "counters": counters,
            "gauges": gauges,
            "timelines": timelines,
            "histograms": histograms,
        }
