"""Bottleneck attribution: which component saturates at which size.

The paper explains its headline curves by utilization reasoning — at
small sizes the ~2 us host interrupt dominates the 5.39 us put latency;
at large sizes the TX DMA engine's per-packet cost sets the
1108.76 MB/s ceiling, with the half-bandwidth points falling where the
per-message host/firmware overheads and the per-byte engine costs
cross.  This module turns the metrics registry's busy timelines into
exactly that argument: for each measurement window of a NetPIPE sweep
it computes every stage's busy fraction and names the stage with the
highest utilization.

Stages are derived from timeline names: every registered ``*.busy``
timeline is a stage, with the ``node{N}.`` prefix stripped so the two
symmetric nodes of a pair fold into one column (the *max* across
instances is reported — for ping-pong both nodes are equivalent; for
streaming it picks the busy side, which is the saturating one).

:func:`reconcile_with_spans` cross-checks the metrics layer against the
PR 2 span layer on a run with both enabled: per component, total busy
picoseconds from timelines must agree with the summed span durations.
The host stage is excluded — application-level think time is
deliberately unspanned — and stages with no activity on either side are
skipped.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, List, Sequence, Tuple

from .registry import MetricsRegistry, Timeline

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..machine.builder import Machine

__all__ = [
    "SizeAttribution",
    "ReconcileRow",
    "attribute_windows",
    "saturating_by_decade",
    "format_attribution",
    "reconcile_with_spans",
    "format_reconciliation",
]


@dataclass(frozen=True)
class SizeAttribution:
    """Per-stage utilization over one measurement window."""

    nbytes: int
    window_ps: int
    utilization: Dict[str, float]
    saturating: str

    @property
    def saturating_utilization(self) -> float:
        """Busy fraction of the saturating stage."""
        return self.utilization[self.saturating]


@dataclass(frozen=True)
class ReconcileRow:
    """One metrics-vs-spans comparison for a component."""

    component: str
    node: int
    metrics_ps: int
    spans_ps: int
    delta_frac: float
    ok: bool


def _stage_of(name: str) -> str | None:
    """Map a timeline name to its attribution stage, or None.

    ``node0.txdma.busy`` -> ``txdma``; ``node1.ht.to_nic.busy`` ->
    ``ht.to_nic``; ``wire.0->1.busy`` -> ``wire``.  Only ``*.busy``
    timelines participate.
    """
    if not name.endswith(".busy"):
        return None
    stem = name[: -len(".busy")]
    head, _, rest = stem.partition(".")
    if head.startswith("node") and head[4:].isdigit():
        return rest or None
    if head == "wire":
        return "wire"
    return stem


def _stages(metrics: MetricsRegistry) -> Dict[str, List[Timeline]]:
    """Group the registry's busy timelines by attribution stage,
    skipping timelines that never recorded an interval."""
    groups: Dict[str, List[Timeline]] = {}
    for name, timeline in metrics.timelines().items():
        stage = _stage_of(name)
        if stage is None or not len(timeline):
            continue
        groups.setdefault(stage, []).append(timeline)
    return groups


def attribute_windows(
    metrics: MetricsRegistry,
    windows: Sequence[Tuple[int, int, int]],
) -> List[SizeAttribution]:
    """Per-stage utilization for each ``(nbytes, t0, t1)`` window.

    The windows are the timed portions of a NetPIPE sweep (see
    ``NetPipeRunner.windows``); utilization is exact busy overlap with
    the window, so work straddling the window edge is pro-rated.
    """
    rows: List[SizeAttribution] = []
    groups = _stages(metrics)
    if not groups:
        raise ValueError(
            "no busy timelines registered — was the machine built with "
            "metrics enabled?"
        )
    for nbytes, t0, t1 in windows:
        util = {
            stage: max(t.utilization(t0, t1) for t in timelines)
            for stage, timelines in groups.items()
        }
        saturating = max(util, key=lambda s: util[s])
        rows.append(SizeAttribution(nbytes, t1 - t0, util, saturating))
    return rows


def saturating_by_decade(rows: Iterable[SizeAttribution]) -> Dict[int, str]:
    """Most-frequent saturating stage per log10 size decade.

    Keys are decade exponents (0 for 1-9 B, 3 for 1000-9999 B, ...);
    ties break toward the stage saturating at the larger sizes.
    """
    votes: Dict[int, Dict[str, int]] = {}
    for row in rows:
        decade = int(math.log10(row.nbytes)) if row.nbytes > 0 else 0
        stage_votes = votes.setdefault(decade, {})
        stage_votes[row.saturating] = stage_votes.get(row.saturating, 0) + 1
    out: Dict[int, str] = {}
    for decade, stage_votes in sorted(votes.items()):
        out[decade] = max(stage_votes, key=lambda s: stage_votes[s])
    return out


def format_attribution(rows: Sequence[SizeAttribution]) -> str:
    """Fixed-width utilization table; ``*`` marks the saturating stage."""
    if not rows:
        return "(no measurement windows)"
    stages = sorted({stage for row in rows for stage in row.utilization})
    header = f"{'bytes':>9}  " + "  ".join(f"{s:>12}" for s in stages)
    lines = [header, "-" * len(header)]
    for row in rows:
        cells = []
        for stage in stages:
            util = row.utilization.get(stage, 0.0)
            mark = "*" if stage == row.saturating else " "
            cells.append(f"{util * 100:11.2f}{mark}")
        lines.append(f"{row.nbytes:>9}  " + "  ".join(cells))
    lines.append("(cells: % of the measurement window the stage was busy;")
    lines.append(" * = saturating stage at that size)")
    return "\n".join(lines)


#: per-component span names vs timeline suffixes used by the
#: reconciliation pass.  ``host`` is deliberately absent: application
#: think time (EQ polling loops and the like) is busy on the host
#: timeline but intentionally outside any span.
_RECONCILE_MAP: List[Tuple[str, Tuple[str, ...], Tuple[str, ...]]] = [
    ("txdma", ("txdma.fetch", "txdma.chunk"), ("txdma.busy", "txdma.fetch.busy")),
    ("rxdma", ("rxdma.header", "rxdma.deposit"), ("rxdma.busy",)),
    ("fw", (), ("ppc.busy",)),  # span names matched by "fw." prefix
    ("ht", ("ht.read", "ht.write"), ("ht.to_nic.busy", "ht.to_host.busy")),
]


def reconcile_with_spans(
    machine: "Machine", tolerance: float = 0.05
) -> List[ReconcileRow]:
    """Cross-check timelines against span aggregates, per node.

    Requires a machine built with both ``metrics=True`` and
    ``trace=True``.  For each component the total busy picoseconds from
    the metrics timelines must match the summed durations of that
    component's spans within ``tolerance`` (the engines' spans wrap
    exactly the costed work, so on an uncontended run the two layers
    agree exactly; the tolerance absorbs unspanned one-off work such as
    process-init commands).
    """
    if machine.metrics is None or machine.tracer is None:
        raise ValueError("reconciliation needs metrics=True and trace=True")
    metrics = machine.metrics
    span_ps: Dict[Tuple[int, str], int] = {}
    fw_ps: Dict[int, int] = {}
    for span in machine.tracer.spans:
        if span.t1 is None:
            continue
        key = (span.node, span.name)
        span_ps[key] = span_ps.get(key, 0) + span.duration
        if span.name.startswith("fw."):
            fw_ps[span.node] = fw_ps.get(span.node, 0) + span.duration
    rows: List[ReconcileRow] = []

    def add(component: str, node: int, m_ps: int, s_ps: int) -> None:
        if m_ps == 0 and s_ps == 0:
            return
        delta = abs(m_ps - s_ps) / max(m_ps, s_ps)
        rows.append(
            ReconcileRow(component, node, m_ps, s_ps, delta, delta <= tolerance)
        )

    for nid in sorted(machine.nodes):
        for component, span_names, suffixes in _RECONCILE_MAP:
            m_ps = 0
            for suffix in suffixes:
                timeline = metrics.get(f"node{nid}.{suffix}")
                if timeline is not None:
                    m_ps += timeline.busy_total()
            if component == "fw":
                s_ps = fw_ps.get(nid, 0)
            else:
                s_ps = sum(span_ps.get((nid, n), 0) for n in span_names)
            add(component, nid, m_ps, s_ps)
    # the wire is per (src, dst) pipe, not per node: compare the summed
    # serialize spans against the summed pipe busy timelines
    wire_m = sum(
        t.busy_total()
        for name, t in metrics.timelines().items()
        if _stage_of(name) == "wire"
    )
    wire_s = sum(ps for (_, name), ps in span_ps.items() if name == "wire.serialize")
    add("wire", -1, wire_m, wire_s)
    return rows


def format_reconciliation(rows: Sequence[ReconcileRow]) -> str:
    """Fixed-width metrics-vs-spans table."""
    if not rows:
        return "(nothing to reconcile)"
    header = (
        f"{'component':<10} {'node':>4} {'metrics (ps)':>16} "
        f"{'spans (ps)':>16} {'delta':>8}  ok"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        node = "-" if row.node < 0 else str(row.node)
        lines.append(
            f"{row.component:<10} {node:>4} {row.metrics_ps:>16} "
            f"{row.spans_ps:>16} {row.delta_frac * 100:>7.2f}%  "
            f"{'yes' if row.ok else 'NO'}"
        )
    return "\n".join(lines)
