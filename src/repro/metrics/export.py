"""Exporters: one JSON document, plus Prometheus text exposition.

The JSON document is the canonical artifact (``repro stats --json``,
the CI ``stats-smoke`` job, and the benchrunner utilization appendix
all derive from it); the Prometheus text format is for scraping the
same numbers into standard dashboards.  Host wall-clock throughput
(``repro.perf``) lands in the same document under ``"perf"`` so
simulated utilization and simulator events/sec live in one artifact.
"""

from __future__ import annotations

import json
import re
from typing import TYPE_CHECKING, Any, Dict, Optional, Sequence

from .attribution import ReconcileRow, SizeAttribution
from .registry import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..machine.builder import Machine
    from ..perf import PerfResult

__all__ = [
    "EXPORT_SCHEMA",
    "machine_counters",
    "metrics_document",
    "canonical_json",
    "to_prometheus_text",
]

EXPORT_SCHEMA = "repro-metrics/v1"

_PROM_BAD = re.compile(r"[^a-zA-Z0-9_]")


def machine_counters(machine: "Machine") -> Dict[str, int]:
    """Pre-existing component counters, flattened into registry naming.

    The components have always kept their own :class:`Counters` (host
    traps/interrupts, kernel puts, firmware events, DMA packet counts,
    fabric chunk counts); the export folds them into the same
    ``node{N}.{component}.{name}`` namespace as the registry so one
    document covers everything.
    """
    out: Dict[str, int] = {}
    for nid, node in sorted(machine.nodes.items()):
        per_node = [
            ("host", node.opteron.counters),
            ("kernel", node.kernel.counters),
            ("fw", node.firmware.counters),
            ("txdma", node.seastar.tx.counters),
        ]
        if node.seastar.rx is not None:
            per_node.append(("rxdma", node.seastar.rx.counters))
        port = machine.fabric.ports.get(nid)
        if port is not None:
            per_node.append(("port", port.stats))
        for component, counters in per_node:
            for name, value in sorted(counters.snapshot().items()):
                out[f"node{nid}.{component}.{name}"] = value
    for name, value in sorted(machine.fabric.counters.snapshot().items()):
        out[f"fabric.{name}"] = value
    link = machine.fabric.link
    out["link.packets_carried"] = link.packets_carried
    out["link.retry_time_ps"] = link.retry_time_ps
    return out


def metrics_document(
    registry: MetricsRegistry,
    *,
    machine: Optional["Machine"] = None,
    attribution: Optional[Sequence[SizeAttribution]] = None,
    reconciliation: Optional[Sequence[ReconcileRow]] = None,
    perf: Optional["PerfResult"] = None,
    meta: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble the export document from a registry snapshot.

    Optional sections: component counters collected from ``machine``,
    the per-size ``attribution`` table, the metrics-vs-spans
    ``reconciliation``, and a ``repro.perf`` wall-clock result.
    """
    doc: Dict[str, Any] = {"schema": EXPORT_SCHEMA}
    if meta:
        doc["meta"] = dict(meta)
    doc.update(registry.snapshot())
    if machine is not None:
        merged = machine_counters(machine)
        merged.update(doc["counters"])
        doc["counters"] = merged
    if attribution is not None:
        doc["attribution"] = [
            {
                "nbytes": row.nbytes,
                "window_ps": row.window_ps,
                "utilization": {k: row.utilization[k] for k in sorted(row.utilization)},
                "saturating": row.saturating,
            }
            for row in attribution
        ]
    if reconciliation is not None:
        doc["reconciliation"] = [
            {
                "component": row.component,
                "node": row.node,
                "metrics_ps": row.metrics_ps,
                "spans_ps": row.spans_ps,
                "delta_frac": row.delta_frac,
                "ok": row.ok,
            }
            for row in reconciliation
        ]
    if perf is not None:
        doc["perf"] = perf.to_json()
    return doc


def canonical_json(doc: Dict[str, Any]) -> str:
    """Stable serialization (sorted keys, LF, trailing newline)."""
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"


def _prom_name(name: str) -> str:
    return "repro_" + _PROM_BAD.sub("_", name)


def _prom_value(value: Any) -> str:
    """Render a sample value per the exposition format.

    Python's ``float`` spellings (``nan``/``inf``/``-inf``) are not valid
    exposition values; Prometheus expects ``NaN``/``+Inf``/``-Inf``.
    """
    if isinstance(value, float):
        if value != value:  # NaN never equals itself
            return "NaN"
        if value == float("inf"):
            return "+Inf"
        if value == float("-inf"):
            return "-Inf"
    return str(value)


def _prom_label_value(value: Any) -> str:
    """Escape a label value: ``\\`` -> ``\\\\``, ``"`` -> ``\\"``, LF -> ``\\n``.

    Exactly the three escapes the exposition format defines; everything
    else (UTF-8 included) passes through verbatim.
    """
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _prom_labels(labels: Optional[Dict[str, Any]]) -> str:
    """Render a label set (or "" when absent), escaping every value."""
    if not labels:
        return ""
    body = ",".join(
        f'{_PROM_BAD.sub("_", str(k))}="{_prom_label_value(v)}"'
        for k, v in labels.items()
    )
    return "{" + body + "}"


def _prom_le(edge: Any) -> str:
    """Bucket boundary label: finite edges verbatim, infinities folded
    to the canonical ``+Inf``/``-Inf`` spellings."""
    if isinstance(edge, float) and (edge != edge or edge in (float("inf"), float("-inf"))):
        return _prom_value(edge)
    return str(edge)


def to_prometheus_text(doc: Dict[str, Any]) -> str:
    """Render an export document in Prometheus text exposition format.

    Counters become ``counter`` samples; gauges expose their last and
    time-weighted-mean values (``NaN`` samples render as Prometheus
    ``NaN``, not Python ``nan``); timelines expose busy picoseconds
    (counter) and whole-run utilization (gauge); histograms use the
    cumulative ``_bucket``/``_sum``/``_count`` convention with a final
    ``+Inf`` bucket equal to ``_count``.  Document ``meta`` exports as a
    ``repro_meta_info`` gauge whose label values are escaped per the
    exposition format (backslash, double quote, newline).  Wall-clock
    perf (when present) exports as ``repro_perf_events_per_sec``.
    """
    lines: list[str] = []

    def emit(name: str, kind: str, value: Any,
             labels: Optional[Dict[str, Any]] = None) -> None:
        lines.append(f"# TYPE {name} {kind}")
        lines.append(f"{name}{_prom_labels(labels)} {_prom_value(value)}")

    meta = doc.get("meta")
    if meta:
        emit(
            "repro_meta_info", "gauge", 1,
            {k: v for k, v in sorted(meta.items())
             if isinstance(v, (str, int, float, bool))},
        )
    for name, value in sorted(doc.get("counters", {}).items()):
        emit(_prom_name(name), "counter", value)
    for name, summary in sorted(doc.get("gauges", {}).items()):
        if summary.get("samples", 0) == 0:
            continue
        base = _prom_name(name)
        emit(base, "gauge", summary["last"])
        emit(base + "_time_weighted_mean", "gauge", summary["time_weighted_mean"])
    for name, summary in sorted(doc.get("timelines", {}).items()):
        base = _prom_name(name)
        emit(base + "_ps_total", "counter", summary["busy_ps"])
        emit(base + "_utilization", "gauge", summary["utilization"])
    for name, hist in sorted(doc.get("histograms", {}).items()):
        base = _prom_name(name)
        lines.append(f"# TYPE {base} histogram")
        cumulative = 0
        for edge, count in zip(hist["edges"], hist["counts"]):
            if isinstance(edge, float) and edge == float("inf"):
                # an explicit +Inf edge would duplicate the final bucket;
                # its count still lands there via the overflow slot below
                continue
            cumulative += count
            lines.append(f'{base}_bucket{{le="{_prom_le(edge)}"}} {cumulative}')
        # the counts vector has one more entry than edges: the overflow
        # bucket, which closes the cumulative series as the +Inf sample
        lines.append(f'{base}_bucket{{le="+Inf"}} {hist["count"]}')
        lines.append(f"{base}_sum {_prom_value(hist['sum'])}")
        lines.append(f"{base}_count {hist['count']}")
    perf = doc.get("perf")
    if perf is not None:
        emit("repro_perf_events_per_sec", "gauge", perf["events_per_sec"])
        emit("repro_perf_events_total", "counter", perf["events"])
        emit("repro_perf_wall_seconds", "gauge", perf["wall_s"])
    return "\n".join(lines) + "\n"
