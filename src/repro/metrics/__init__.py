"""Machine-wide metrics: typed instruments, attribution, exporters.

Three layers (see ``docs/observability.md`` for when to use which):

* :mod:`repro.metrics.registry` — the instruments and the registry the
  machine builder distributes to every modeled component
  (``Machine(metrics=True)`` / ``build_pair(metrics=True)``);
* :mod:`repro.metrics.attribution` — per-size utilization tables over
  NetPIPE measurement windows and the saturating-stage verdicts that
  reproduce the paper's bottleneck arguments;
* :mod:`repro.metrics.export` — one JSON document plus Prometheus text,
  with ``repro.perf`` wall-clock throughput in the same schema.

Everything here is zero-cost when disabled: components hold ``None``
instead of an instrument, and no instrument ever schedules a simulation
event, so results are bit-identical with metrics on or off.
"""

from .attribution import (
    ReconcileRow,
    SizeAttribution,
    attribute_windows,
    format_attribution,
    format_reconciliation,
    reconcile_with_spans,
    saturating_by_decade,
)
from .export import (
    EXPORT_SCHEMA,
    canonical_json,
    machine_counters,
    metrics_document,
    to_prometheus_text,
)
from .registry import Gauge, Histogram, MetricCounter, MetricsRegistry, Timeline

__all__ = [
    "MetricCounter",
    "Gauge",
    "Timeline",
    "Histogram",
    "MetricsRegistry",
    "SizeAttribution",
    "ReconcileRow",
    "attribute_windows",
    "saturating_by_decade",
    "format_attribution",
    "reconcile_with_spans",
    "format_reconciliation",
    "EXPORT_SCHEMA",
    "machine_counters",
    "metrics_document",
    "canonical_json",
    "to_prometheus_text",
]
