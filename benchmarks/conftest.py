"""Shared helpers for the figure-regeneration benchmarks.

Every ``bench_fig*.py`` regenerates one figure of the paper: it sweeps
the same workload, prints the measured series next to the paper's
published anchors, asserts the *shape* (who wins, by what factor, where
crossovers fall), and times the sweep under pytest-benchmark.

Run with::

    pytest benchmarks/ --benchmark-only

Every table/anchor line is (a) printed live, (b) replayed in the pytest
terminal summary, and (c) written to a report file that survives any
capture/plugin configuration (``-p no:cacheprovider``, ``--capture=fd``,
a disabled terminal reporter, ...).  The report file is what
``repro.benchrunner.parse_report_file`` consumes; its path defaults to
``<rootdir>/.bench_report.txt`` and can be overridden with the
``REPRO_BENCH_REPORT`` environment variable.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

import pytest

from repro.netpipe.runner import Series

#: every table/anchor line emitted by the benches; flushed into the
#: pytest terminal summary so it survives output capture and lands in
#: redirected/teed logs (fd-level capture swallows plain prints).
_REPORT_LINES: list[str] = []

#: where the report file goes; resolved in pytest_configure.
_REPORT_PATH: Path | None = None


def _emit(line: str) -> None:
    _REPORT_LINES.append(line)
    print(line)  # also visible live under `pytest -s`


def print_series_table(title: str, series_list: list[Series], *, latency: bool) -> None:
    """Render measured curves as the rows a NetPIPE run would print."""
    _emit(f"\n=== {title} ===")
    names = [s.module for s in series_list]
    header = f"{'bytes':>10} | " + " | ".join(f"{n:>12}" for n in names)
    _emit(header)
    _emit("-" * len(header))
    sizes = series_list[0].sizes()
    for i, nbytes in enumerate(sizes):
        cells = []
        for s in series_list:
            p = s.points[i]
            value = p.latency_us if latency else p.bandwidth_mb_s
            cells.append(f"{value:12.2f}")
        _emit(f"{nbytes:>10} | " + " | ".join(cells))


def print_anchor(name: str, paper_value, measured_value, unit: str) -> None:
    """One paper-vs-measured comparison line."""
    if paper_value:
        ratio = measured_value / paper_value
        _emit(
            f"  {name:<42} paper={paper_value:>10.2f} {unit:<5}"
            f" measured={measured_value:>10.2f} {unit:<5} (x{ratio:.3f})"
        )
    else:
        _emit(f"  {name:<42} measured={measured_value:>10.2f} {unit}")


def run_once(benchmark, fn):
    """Time a deterministic sweep exactly once (the simulation always
    produces identical results, so repeated rounds only measure wall
    clock of the simulator itself)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture
def anchors():
    """Marker fixture: the bench emits paper-vs-measured tables (they are
    collected and replayed in the terminal summary)."""
    yield


def report_path() -> Path:
    """Where the parseable bench report is written."""
    if _REPORT_PATH is not None:
        return _REPORT_PATH
    env = os.environ.get("REPRO_BENCH_REPORT")
    return Path(env) if env else Path(".bench_report.txt")


def write_report_file(path: Path | None = None) -> Path | None:
    """Flush the collected lines to the report file (best effort)."""
    if not _REPORT_LINES:
        return None
    target = path or report_path()
    try:
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text("\n".join(_REPORT_LINES) + "\n", encoding="utf-8")
    except OSError:  # an unwritable location must never fail the run
        return None
    return target


def pytest_configure(config) -> None:
    global _REPORT_PATH
    env = os.environ.get("REPRO_BENCH_REPORT")
    if env:
        _REPORT_PATH = Path(env)
    else:
        _REPORT_PATH = Path(str(config.rootdir)) / ".bench_report.txt"


def pytest_sessionfinish(session, exitstatus) -> None:
    """Persist the report no matter which reporting plugins are active.

    The terminal-summary replay below only runs when the terminal
    reporter plugin exists and is reachable; the file write is the
    capture-proof channel the benchrunner parses.
    """
    write_report_file()


def pytest_terminal_summary(terminalreporter, exitstatus, config) -> None:
    """Replay every regenerated figure/anchor table after the run."""
    if not _REPORT_LINES:
        return
    try:
        terminalreporter.section("regenerated paper figures & anchors")
        for line in _REPORT_LINES:
            terminalreporter.write_line(line)
    except Exception:
        # degraded reporter (plugin variations, closed streams): fall
        # back to the real stdout so the tables are never lost
        out = sys.__stdout__
        if out is not None:
            out.write("\n".join(_REPORT_LINES) + "\n")
    path = write_report_file()
    if path is not None:
        try:
            terminalreporter.write_line(f"bench report written to {path}")
        except Exception:
            pass
