"""Section 4.2's SRAM occupancy formula:

    M = S * Ssize + sum_i(P_i * Psize)

Regenerates the paper's accounting — 1,024 sources plus 1,274 generic
pendings leave room for "several more similarly sized pending pools" —
by booting firmware instances and reading the allocator, then sweeps
the number of firmware-level processes N to show where the 384 KB budget
actually runs out.
"""

import pytest

from repro.fw.firmware import Firmware
from repro.hw import SeaStar, SramExhausted
from repro.hw.config import SeaStarConfig
from repro.machine.builder import build_pair
from repro.net import Fabric, Torus3D
from repro.sim import KB, Simulator

from .conftest import print_anchor, run_once


def boot_and_measure():
    """Boot one node; return (used, free, pools) from its SRAM."""
    machine, na, nb = build_pair()
    sram = na.seastar.sram
    return sram.used_bytes, sram.free_bytes, sram.pools()


def max_additional_processes():
    """How many extra accelerated-process pending pools fit in SRAM."""
    machine, na, nb = build_pair()
    count = 0
    while True:
        try:
            na.create_process(accelerated=True)
            count += 1
        except SramExhausted:
            return count
        if count > 64:  # pragma: no cover - sanity stop
            return count


@pytest.mark.benchmark(group="inline")
def test_inline_sram_occupancy(benchmark, anchors):
    (used, free, pools), extra = run_once(
        benchmark, lambda: (boot_and_measure(), max_additional_processes())
    )
    cfg = SeaStarConfig()
    formula = (
        cfg.num_sources * cfg.source_struct_bytes
        + cfg.num_generic_pendings * cfg.pending_struct_bytes
    )
    print("\n=== SRAM occupancy (section 4.2) ===")
    print_anchor("SRAM capacity", 384.0, cfg.sram_bytes / KB, "KB")
    print_anchor("M (formula: S*Ssize + sum Pi*Psize)", 0, formula / KB, "KB")
    print_anchor("allocator used at boot", 0, used / KB, "KB")
    print_anchor("free after generic boot", 0, free / KB, "KB")
    print_anchor("additional accelerated processes that fit", 0, float(extra), "")
    for name, pool in sorted(pools.items()):
        print(f"    pool {name:<28} {pool.count:>6} x {pool.item_bytes:>5} B")

    # the allocator's accounting equals the paper's formula (plus the
    # control block and firmware-internal pool we also model)
    overhead = used - formula
    assert overhead >= 0
    assert used <= cfg.sram_bytes
    # "several more similarly sized pending pools can be supported"
    assert extra >= 3
