"""Ablation — sensitivity to the host interrupt cost.

Section 6: "A significant amount of the current latency is due to
interrupt processing by the host processor"; section 3.3: "Interrupts
... are very costly, requiring at least 2 us of overhead each.  Clearly,
it will be necessary to eliminate all interrupts from the data path."

This ablation sweeps the modeled interrupt overhead and shows the put
latency responding with the exact interrupt multiplicity of each path:
slope 1x for <= 12 B messages (one interrupt) and 2x above (two), while
accelerated mode stays flat at any interrupt cost — the quantified form
of the paper's argument for offload.
"""

import pytest

from repro.analysis import latency_at
from repro.hw.config import SeaStarConfig
from repro.netpipe import PortalsPutModule, run_series
from repro.sim import us

from .conftest import print_anchor, run_once

IRQ_US = [0.5, 1.0, 2.0, 3.0, 4.0]


def sweep():
    rows = []
    for irq in IRQ_US:
        cfg = SeaStarConfig(interrupt_overhead=us(irq))
        generic = run_series(PortalsPutModule(), "pingpong", [1, 1024], config=cfg)
        accel = run_series(
            PortalsPutModule(accelerated=True), "pingpong", [1], config=cfg
        )
        rows.append(
            (
                irq,
                latency_at(generic, 1),
                latency_at(generic, 1024),
                latency_at(accel, 1),
            )
        )
    return rows


@pytest.mark.benchmark(group="ablation")
def test_ablation_interrupt_cost(benchmark, anchors):
    rows = run_once(benchmark, sweep)
    print("\n=== Latency vs interrupt overhead (us) ===")
    print(f"{'irq cost':>9} | {'put 1B':>7} | {'put 1KB':>8} | {'accel 1B':>9}")
    for irq, g1, g1k, a1 in rows:
        print(f"{irq:>9.1f} | {g1:>7.2f} | {g1k:>8.2f} | {a1:>9.2f}")

    irqs = [r[0] for r in rows]
    g1 = [r[1] for r in rows]
    g1k = [r[2] for r in rows]
    a1 = [r[3] for r in rows]
    span = irqs[-1] - irqs[0]
    slope_small = (g1[-1] - g1[0]) / span
    slope_large = (g1k[-1] - g1k[0]) / span
    slope_accel = (a1[-1] - a1[0]) / span
    print_anchor("slope, <=12B path (interrupts on path)", 1.0, slope_small, "x")
    print_anchor("slope, >12B path", 2.0, slope_large, "x")
    print_anchor("slope, accelerated", 0.0, slope_accel, "x")

    # one interrupt on the small-message path, two on the payload path
    assert slope_small == pytest.approx(1.0, abs=0.05)
    assert slope_large == pytest.approx(2.0, abs=0.05)
    # offload removes the dependence entirely
    assert abs(slope_accel) < 0.01
    # at the paper's 2 us the small path reproduces Figure 4's 5.39 us
    at_2us = dict((r[0], r[1]) for r in rows)[2.0]
    assert at_2us == pytest.approx(5.39, rel=0.10)
