"""Ablation — accelerated (offloaded) mode vs the measured generic mode.

Section 3.3/6: "In the fully offloaded implementation, both interrupts
will be eliminated as the network interface will process headers and
will write completion notifications directly into process space" and
"we expect a dramatic decrease in the point at which half bandwidth is
achieved as processing is offloaded from the host and the costly
interrupt latency is eliminated."

The paper could not yet measure this; we implement accelerated mode and
quantify exactly what it buys.
"""

import pytest

from repro.analysis import half_bandwidth_point, latency_at, peak_bandwidth
from repro.netpipe import PortalsPutModule, netpipe_sizes, run_series

from .conftest import print_anchor, print_series_table, run_once

LAT_SIZES = netpipe_sizes(1, 1024)
BW_SIZES = netpipe_sizes(1, 8 * 1024 * 1024, perturbation=0)


def sweep():
    generic_lat = run_series(PortalsPutModule(), "pingpong", LAT_SIZES)
    accel_lat = run_series(
        PortalsPutModule(accelerated=True), "pingpong", LAT_SIZES
    )
    accel_lat.module = "put-accel"
    generic_bw = run_series(PortalsPutModule(), "pingpong", BW_SIZES)
    accel_bw = run_series(PortalsPutModule(accelerated=True), "pingpong", BW_SIZES)
    accel_bw.module = "put-accel"
    return generic_lat, accel_lat, generic_bw, accel_bw


@pytest.mark.benchmark(group="ablation")
def test_ablation_accelerated_mode(benchmark, anchors):
    generic_lat, accel_lat, generic_bw, accel_bw = run_once(benchmark, sweep)
    print_series_table(
        "Ablation: generic vs accelerated latency (us)",
        [generic_lat, accel_lat],
        latency=True,
    )
    g1 = latency_at(generic_lat, 1)
    a1 = latency_at(accel_lat, 1)
    print("\nAnchors:")
    print_anchor("generic 1B latency", 0, g1, "us")
    print_anchor("accelerated 1B latency", 0, a1, "us")
    print_anchor("generic half-bw", 0, float(half_bandwidth_point(generic_bw)), "B")
    print_anchor("accel half-bw", 0, float(half_bandwidth_point(accel_bw)), "B")
    print_anchor(
        "XT3 nearest-neighbor MPI latency requirement", 2.0, a1, "us (target context)"
    )

    # Offload eliminates the interrupts: a dramatic latency cut ...
    assert a1 < g1 / 1.8
    # ... and a dramatic decrease in the half-bandwidth point
    assert half_bandwidth_point(accel_bw) < half_bandwidth_point(generic_bw) / 1.5
    # the peak is unchanged (the DMA engines were already the bottleneck)
    assert peak_bandwidth(accel_bw) == pytest.approx(
        peak_bandwidth(generic_bw), rel=0.02
    )
