"""Inline measurements from section 3.3: the NULL-trap (~75 ns) and the
interrupt cost (>= 2 us) — measured on the live models, not read from
the config, so the execution paths actually charge what the paper says.
"""

import pytest

from repro.analysis import PAPER
from repro.hw.config import SeaStarConfig
from repro.hw.processors import Opteron
from repro.sim import Simulator, to_ns, to_us

from .conftest import print_anchor, run_once


def measure_null_trap(rounds: int = 1000) -> float:
    """Average NULL-trap cost in ns over ``rounds`` kernel crossings."""
    sim = Simulator()
    cpu = Opteron(sim, SeaStarConfig())

    def body():
        for _ in range(rounds):
            yield from cpu.trap()

    sim.process(body())
    sim.run()
    return to_ns(sim.now) / rounds


def measure_interrupt(rounds: int = 200) -> float:
    """Average cost in us to take one (empty) interrupt."""
    sim = Simulator()
    cpu = Opteron(sim, SeaStarConfig())

    def empty_handler():
        if False:
            yield

    def body():
        for _ in range(rounds):
            cpu.raise_interrupt(empty_handler, coalesce=False)
            # wait for the handler to drain before raising the next
            yield sim.timeout(5_000_000)

    sim.process(body())
    sim.run()
    return to_us(cpu.busy_time) / rounds


@pytest.mark.benchmark(group="inline")
def test_inline_trap_and_interrupt_costs(benchmark, anchors):
    trap_ns, irq_us = run_once(
        benchmark, lambda: (measure_null_trap(), measure_interrupt())
    )
    print("\n=== Inline overheads (section 3.3) ===")
    print_anchor("NULL-trap into Catamount", PAPER.trap_ns, trap_ns, "ns")
    print_anchor("interrupt overhead", PAPER.interrupt_us, irq_us, "us")

    assert trap_ns == pytest.approx(PAPER.trap_ns, rel=0.02)
    # "at least 2 us each"
    assert irq_us >= PAPER.interrupt_us * 0.999
    # the ratio the paper's design argument rests on: traps are cheap
    # ("not a significant source of overhead"), interrupts are not
    assert irq_us * 1000 / trap_ns > 25
