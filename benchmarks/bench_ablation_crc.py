"""Ablation — link-level CRC retries under fault injection.

Section 2: each link runs "a 16 bit CRC check (with retries)"; the
protocol is invisible above the link and only costs latency.  The paper
treats links as clean; this ablation injects per-packet retry
probabilities and quantifies the degradation — verifying that (a) no
data is ever lost or corrupted (the retry protocol is reliable) and
(b) throughput decays smoothly with the injected error rate.
"""

import pytest

from repro.analysis import peak_bandwidth
from repro.hw.config import SeaStarConfig
from repro.netpipe import PortalsPutModule, run_series

from .conftest import print_anchor, run_once

RATES = [0.0, 0.001, 0.01, 0.05, 0.2]
SIZE = [1 << 20]  # 1 MiB transfers


def sweep():
    results = []
    for prob in RATES:
        cfg = SeaStarConfig(link_crc_retry_prob=prob)
        series = run_series(PortalsPutModule(), "pingpong", SIZE, config=cfg)
        results.append((prob, peak_bandwidth(series)))
    return results


@pytest.mark.benchmark(group="ablation")
def test_ablation_crc_retry_injection(benchmark, anchors):
    results = run_once(benchmark, sweep)
    print("\n=== Link CRC retry injection (1 MiB puts) ===")
    print(f"{'retry prob':>11} | {'MB/s':>9} | {'vs clean':>8}")
    clean = results[0][1]
    for prob, bw in results:
        print(f"{prob:>11.3f} | {bw:>9.1f} | {bw / clean:>7.2%}")
    print_anchor("clean-link bandwidth", 0, clean, "MB/s")

    bws = [bw for _, bw in results]
    # monotone degradation with injected error rate
    assert all(a >= b * 0.999 for a, b in zip(bws, bws[1:]))
    # small real-world error rates are nearly free
    assert bws[1] > 0.98 * clean
    # heavy injection visibly hurts but the protocol still delivers
    # (the run completing at all proves no message was lost)
    assert bws[-1] < 0.95 * clean
    assert bws[-1] > 0
