"""Figure 5 — uni-directional (ping-pong) bandwidth, 1 B .. 8 MB.

Paper anchors: put peaks at 1108.76 MB/s for an 8 MB message; half
bandwidth around 7 KB; MPI bandwidth only slightly less, with both MPI
implementations achieving the same performance.
"""

import pytest

from repro.analysis import PAPER, half_bandwidth_point, monotone_fraction, peak_bandwidth
from repro.mpi import MPICH1, MPICH2
from repro.netpipe import (
    MPIModule,
    PortalsGetModule,
    PortalsPutModule,
    netpipe_sizes,
    run_series,
)

from .conftest import print_anchor, print_series_table, run_once

SIZES = netpipe_sizes(1, 8 * 1024 * 1024, perturbation=3)

MODULES = [
    ("put", PortalsPutModule()),
    ("get", PortalsGetModule()),
    ("mpich-1.2.6", MPIModule(MPICH1)),
    ("mpich2", MPIModule(MPICH2)),
]


def sweep_all():
    return [run_series(module, "pingpong", SIZES) for _, module in MODULES]


@pytest.mark.benchmark(group="fig5")
def test_fig5_unidirectional_bandwidth(benchmark, anchors):
    series = run_once(benchmark, sweep_all)
    print_series_table(
        "Figure 5: uni-directional bandwidth (MB/s)", series, latency=False
    )
    put, get, m1, m2 = series
    print("\nPaper anchors:")
    print_anchor("put peak (8 MB)", PAPER.put_peak_mb_s, peak_bandwidth(put), "MB/s")
    print_anchor(
        "put half-bandwidth point",
        float(PAPER.half_bw_pingpong_bytes),
        float(half_bandwidth_point(put)),
        "B",
    )
    print_anchor("mpich-1.2.6 peak", 0, peak_bandwidth(m1), "MB/s")
    print_anchor("mpich2 peak", 0, peak_bandwidth(m2), "MB/s")

    # Shape assertions
    assert peak_bandwidth(put) == pytest.approx(PAPER.put_peak_mb_s, rel=0.03)
    half = half_bandwidth_point(put)
    assert PAPER.half_bw_pingpong_bytes / 2 < half < 2 * PAPER.half_bw_pingpong_bytes
    # "The MPI bandwidth is only slightly less"
    assert peak_bandwidth(m1) > 0.95 * peak_bandwidth(put)
    # "with both MPI implementations achieving the same performance"
    assert peak_bandwidth(m1) == pytest.approx(peak_bandwidth(m2), rel=0.02)
    # bandwidth curves are fairly steep and near-monotone
    assert monotone_fraction(put.bandwidths()) > 0.9
