"""Figure 7 — bi-directional bandwidth.

Paper anchors: put tops out at 2203.19 MB/s for an 8 MB message — "the
SeaStar is able to sustain its unidirectional bandwidth performance when
sending as well as receiving" — with both MPI implementations only
slightly less.
"""

import pytest

from repro.analysis import PAPER, peak_bandwidth
from repro.mpi import MPICH1, MPICH2
from repro.netpipe import (
    MPIModule,
    PortalsGetModule,
    PortalsPutModule,
    netpipe_sizes,
    run_series,
)

from .conftest import print_anchor, print_series_table, run_once

SIZES = netpipe_sizes(1, 8 * 1024 * 1024, perturbation=3)

MODULES = [
    ("put", PortalsPutModule()),
    ("get", PortalsGetModule()),
    ("mpich-1.2.6", MPIModule(MPICH1)),
    ("mpich2", MPIModule(MPICH2)),
]


def sweep_all():
    return [run_series(module, "bidir", SIZES) for _, module in MODULES]


@pytest.mark.benchmark(group="fig7")
def test_fig7_bidirectional_bandwidth(benchmark, anchors):
    series = run_once(benchmark, sweep_all)
    print_series_table(
        "Figure 7: bi-directional bandwidth (MB/s)", series, latency=False
    )
    put, get, m1, m2 = series
    print("\nPaper anchors:")
    print_anchor(
        "put bi-dir peak (8 MB)", PAPER.put_bidir_peak_mb_s, peak_bandwidth(put), "MB/s"
    )
    print_anchor("mpich-1.2.6 peak", 0, peak_bandwidth(m1), "MB/s")

    # Shape assertions
    assert peak_bandwidth(put) == pytest.approx(PAPER.put_bidir_peak_mb_s, rel=0.03)
    # bi-dir ~= 2x the uni-dir peak: TX and RX sustained simultaneously
    assert peak_bandwidth(put) / PAPER.put_peak_mb_s == pytest.approx(2.0, rel=0.05)
    # MPI only slightly less
    assert peak_bandwidth(m1) > 0.95 * peak_bandwidth(put)
    assert peak_bandwidth(m1) == pytest.approx(peak_bandwidth(m2), rel=0.02)
