"""Figure 6 — streaming (uni-directional back-to-back) bandwidth.

Paper anchors: the streaming curve is steeper than ping-pong, reaching
half bandwidth around 5 KB; streaming has "a much greater impact on the
performance of the get operation, which is a blocking operation ...
that cannot be pipelined".
"""

import pytest

from repro.analysis import PAPER, half_bandwidth_point, peak_bandwidth
from repro.mpi import MPICH1, MPICH2
from repro.netpipe import (
    MPIModule,
    PortalsGetModule,
    PortalsPutModule,
    netpipe_sizes,
    run_series,
)

from .conftest import print_anchor, print_series_table, run_once

SIZES = netpipe_sizes(1, 8 * 1024 * 1024, perturbation=3)

MODULES = [
    ("put", PortalsPutModule()),
    ("get", PortalsGetModule()),
    ("mpich-1.2.6", MPIModule(MPICH1)),
    ("mpich2", MPIModule(MPICH2)),
]


def sweep_all():
    return [run_series(module, "stream", SIZES) for _, module in MODULES]


@pytest.mark.benchmark(group="fig6")
def test_fig6_streaming_bandwidth(benchmark, anchors):
    series = run_once(benchmark, sweep_all)
    print_series_table("Figure 6: streaming bandwidth (MB/s)", series, latency=False)
    put, get, m1, m2 = series
    print("\nPaper anchors:")
    print_anchor(
        "put stream half-bandwidth point",
        float(PAPER.half_bw_stream_bytes),
        float(half_bandwidth_point(put)),
        "B",
    )
    print_anchor("put stream peak", PAPER.put_peak_mb_s, peak_bandwidth(put), "MB/s")
    print_anchor(
        "get stream half-bandwidth point",
        0,
        float(half_bandwidth_point(get)),
        "B",
    )

    # Shape assertions
    # streaming is steeper than ping-pong: its half-bandwidth point is
    # smaller (compare against the paper's ping-pong 7 KB anchor)
    assert half_bandwidth_point(put) < PAPER.half_bw_pingpong_bytes
    # the get curve collapses: it reaches half-bandwidth far later
    assert half_bandwidth_point(get) > 2 * half_bandwidth_point(put)
    # at a mid size gets deliver well under puts (serialized round trips)
    idx = SIZES.index(4096) if 4096 in SIZES else len(SIZES) // 2
    assert get.points[idx].bandwidth_mb_s < 0.6 * put.points[idx].bandwidth_mb_s
    # MPI implementations have similar performance
    assert peak_bandwidth(m1) == pytest.approx(peak_bandwidth(m2), rel=0.02)
