"""Whole-plane Red Storm traffic under the conservative parallel DES.

The paper's machine is not a two-node testbed: Red Storm arranges over
10,000 nodes as a 27x16x24 mesh (torus only in z, section 5.1), and the
interesting network behavior — neighbor exchanges, incast onto a hot
node, collective trees — only exists at that scale.  This bench drives
three canonical whole-plane patterns over >= 1k simulated nodes
((16, 8, 8) = 1024 in fast mode, the full 27x16x24 = 10,368 otherwise)
and proves the headline property of ``repro.sim.parallel``: a run
partitioned into slabs across processes reproduces the serial run
**byte-identically** — same delivery records, same trace digest —
because the lookahead-window protocol never lets a partition simulate
past a peer's possible influence.

Scenarios (all traffic starts at t=0 unless caused by a delivery):

* ``neighbor`` — every node sends 2 KB to its x+/y+/z+ neighbors, the
  halo-exchange shape of a stencil code;
* ``incast``   — every node sends 4 KB to node 0, the pathological
  hotspot;
* ``tree``     — node 0 broadcasts 8 KB down a binomial tree, each node
  forwarding to its children on delivery (log2(N) rounds of causality
  crossing every partition boundary).
"""

import json

import pytest

from repro.machine.builder import partition_nodes
from repro.sim.parallel import (
    PlaneScenario,
    lookahead_matrix,
    result_metrics,
    run_scenario,
    trace_digest,
)

from .conftest import print_anchor, run_once

#: fast-mode plane: >= 1k nodes so the parallel driver is always
#: exercised at scale, even in CI (matches executor.plane_dims)
FAST_DIMS = (16, 8, 8)
MSG_BYTES = {"neighbor": 2048, "incast": 4096, "tree": 8192}
PARTITION_COUNTS = (2, 4, 8)


def _scenario(name):
    return PlaneScenario(name=name, dims=FAST_DIMS, msg_bytes=MSG_BYTES[name])


@pytest.mark.benchmark(group="redstorm_plane")
@pytest.mark.parametrize("name", ["neighbor", "incast", "tree"])
def test_plane_serial_vs_partitioned(benchmark, anchors, name):
    scenario = _scenario(name)
    serial = run_once(benchmark, lambda: run_scenario(scenario, 1))
    base_blob = json.dumps(serial["result"], sort_keys=True)
    metrics = result_metrics(serial["result"])

    print(f"\n=== Red Storm plane: {name} over {FAST_DIMS} "
          f"({FAST_DIMS[0] * FAST_DIMS[1] * FAST_DIMS[2]} nodes) ===")
    print(f"{'partitions':>10} | {'rounds':>6} | {'events':>8} | identical")
    info = serial["info"]
    print(f"{1:>10} | {info['rounds']:>6} | "
          f"{info['events_scheduled']:>8} | (baseline)")
    for nparts in PARTITION_COUNTS:
        part = run_scenario(scenario, nparts, transport="memory")
        same = json.dumps(part["result"], sort_keys=True) == base_blob
        info = part["info"]
        print(f"{info['partitions']:>10} | {info['rounds']:>6} | "
              f"{info['events_scheduled']:>8} | {same}")
        # the exactness contract: partitioning is an execution
        # strategy, not a model change
        assert same, f"{name} diverged at {nparts} partitions"

    print("\nAnchors:")
    print_anchor(f"{name} messages delivered", 0,
                 metrics[f"{name}_messages"], "msgs")
    print_anchor(f"{name} makespan", 0,
                 metrics[f"{name}_makespan_us"], "us")
    print_anchor(f"{name} trace digest", 0,
                 metrics[f"{name}_trace_digest"], "")
    assert metrics[f"{name}_messages"] > 0
    assert metrics[f"{name}_trace_digest"] == trace_digest(serial["result"])


@pytest.mark.benchmark(group="redstorm_plane")
def test_plane_lookahead_geometry(benchmark, anchors):
    """The lookahead matrix is positive off-diagonal and symmetric —
    the two properties the progress argument rests on."""
    scenario = _scenario("neighbor")

    def build():
        plan = partition_nodes(scenario.topology(), 4)
        return plan, lookahead_matrix(scenario, plan)

    plan, la = run_once(benchmark, build)
    n = plan.nparts
    print(f"\n=== Lookahead (ps) across {n} slabs on axis {plan.axis} ===")
    for row in la:
        print("  " + " ".join(f"{v:>9}" for v in row))
    for i in range(n):
        assert la[i][i] == 0
        for j in range(n):
            assert la[i][j] == la[j][i]
            if i != j:
                assert la[i][j] > 0
    print_anchor("adjacent-slab lookahead", 0, la[0][1] / 1e6, "us")
