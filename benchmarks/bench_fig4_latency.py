"""Figure 4 — one-way latency vs message size (1 B .. 1 KB).

Paper anchors: 1-byte latencies of 5.39 us (put), 6.60 us (get),
7.97 us (MPICH-1.2.6), 8.40 us (MPICH2); a visible step right after
12 bytes where the header-piggyback optimization stops applying.
"""

import pytest

from repro.analysis import PAPER, latency_at
from repro.mpi import MPICH1, MPICH2
from repro.netpipe import (
    MPIModule,
    PortalsGetModule,
    PortalsPutModule,
    netpipe_sizes,
    run_series,
)

from .conftest import print_anchor, print_series_table, run_once

SIZES = netpipe_sizes(1, 1024)

MODULES = [
    ("put", PortalsPutModule()),
    ("get", PortalsGetModule()),
    ("mpich-1.2.6", MPIModule(MPICH1)),
    ("mpich2", MPIModule(MPICH2)),
]

PAPER_1B = {
    "put": PAPER.put_latency_us,
    "get": PAPER.get_latency_us,
    "mpich-1.2.6": PAPER.mpich1_latency_us,
    "mpich2": PAPER.mpich2_latency_us,
}


def sweep_all():
    return [run_series(module, "pingpong", SIZES) for _, module in MODULES]


@pytest.mark.benchmark(group="fig4")
def test_fig4_latency(benchmark, anchors):
    series = run_once(benchmark, sweep_all)
    print_series_table("Figure 4: latency (us, one-way)", series, latency=True)
    print("\nPaper anchors (1-byte latency):")
    for s in series:
        print_anchor(f"{s.module} @1B", PAPER_1B[s.module], latency_at(s, 1), "us")

    # Shape assertions
    at_1b = [latency_at(s, 1) for s in series]
    assert at_1b == sorted(at_1b), "expected put < get < mpich1 < mpich2"
    put = series[0]
    assert latency_at(put, 13) - latency_at(put, 12) > 2.0, "12-byte step missing"
    assert latency_at(put, 1) == pytest.approx(PAPER.put_latency_us, rel=0.10)
