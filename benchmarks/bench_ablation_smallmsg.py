"""Ablation — the <=12-byte header-piggyback optimization on/off.

Section 6: "Because 12 bytes of user data will fit in the 64 byte header
packet, these 12 bytes can be copied to the host along with the header.
This allows the new message and message completion notification to be
delivered simultaneously and saves an interrupt."

Disabling the optimization (small_msg_bytes = 0) should push small
messages onto the two-interrupt path and erase the Figure 4 step.
"""

import pytest

from repro.analysis import latency_at
from repro.hw.config import SeaStarConfig
from repro.netpipe import PortalsPutModule, netpipe_sizes, run_series

from .conftest import print_anchor, print_series_table, run_once

SIZES = netpipe_sizes(1, 256)


def sweep():
    with_opt = run_series(PortalsPutModule(), "pingpong", SIZES)
    with_opt.module = "put(piggyback)"
    without = run_series(
        PortalsPutModule(),
        "pingpong",
        SIZES,
        config=SeaStarConfig(small_msg_bytes=0),
    )
    without.module = "put(disabled)"
    return with_opt, without


@pytest.mark.benchmark(group="ablation")
def test_ablation_small_message_optimization(benchmark, anchors):
    with_opt, without = run_once(benchmark, sweep)
    print_series_table(
        "Ablation: header piggyback on/off (latency us)",
        [with_opt, without],
        latency=True,
    )
    on_1, off_1 = latency_at(with_opt, 1), latency_at(without, 1)
    print("\nAnchors:")
    print_anchor("1B latency with optimization", 0, on_1, "us")
    print_anchor("1B latency without", 0, off_1, "us")
    print_anchor("interrupt saved", 2.0, off_1 - on_1, "us")

    # the optimization saves roughly one interrupt (>= 2 us)
    assert off_1 - on_1 > 2.0
    # with the optimization off, the curve is flat across 12 bytes
    assert latency_at(without, 13) - latency_at(without, 12) < 0.2
    # with it on, the step exists
    assert latency_at(with_opt, 13) - latency_at(with_opt, 12) > 2.0
    # above 12 bytes the two configurations behave identically
    assert latency_at(with_opt, 64) == pytest.approx(latency_at(without, 64), rel=0.01)
