"""Extension — MPI collective scaling over the simulated torus.

The paper's intro motivates the XT3 with large-scale scientific codes;
their inner loops are collectives.  This bench runs barrier and
allreduce across growing rank counts on a line of nodes and checks the
logarithmic scaling that the dissemination/binomial algorithms (and a
sane network model underneath) must produce.
"""

import math

import numpy as np
import pytest

from repro.machine.builder import Machine
from repro.mpi import allreduce, barrier, create_world, run_world
from repro.net import Torus3D
from repro.sim import to_us

from .conftest import print_anchor, run_once

RANK_COUNTS = [2, 4, 8, 16]


def time_collective(nranks, which):
    machine = Machine(Torus3D((nranks, 1, 1), wrap=(True, False, False)))
    nodes = [machine.node(i) for i in range(nranks)]
    world = create_world(machine, nodes)
    stamps = {}

    def main(mpi, rank):
        yield from barrier(mpi)  # warm up + align
        if rank == 0:
            stamps["t0"] = mpi.sim.now
        if which == "barrier":
            yield from barrier(mpi)
        else:
            out = np.zeros(8, np.uint8)
            yield from allreduce(mpi, np.full(8, 1, np.uint8), out)
        if rank == 0:
            stamps["t1"] = mpi.sim.now
        yield from barrier(mpi)
        return None

    run_world(machine, world, main)
    return to_us(stamps["t1"] - stamps["t0"])


def sweep():
    return {
        which: [(n, time_collective(n, which)) for n in RANK_COUNTS]
        for which in ("barrier", "allreduce")
    }


@pytest.mark.benchmark(group="collectives")
def test_collective_scaling(benchmark, anchors):
    results = run_once(benchmark, sweep)
    print("\n=== MPI collective scaling (us) ===")
    print(f"{'ranks':>6} | {'barrier':>9} | {'allreduce':>10}")
    for (n, tb), (_, ta) in zip(results["barrier"], results["allreduce"]):
        print(f"{n:>6} | {tb:>9.1f} | {ta:>10.1f}")
    b2 = results["barrier"][0][1]
    b16 = results["barrier"][-1][1]
    print_anchor("barrier rounds 2 -> 16 ranks", math.log2(16), b16 / b2, "x")

    # dissemination barrier: ceil(log2 n) rounds -> near-log scaling:
    # 16 ranks should cost ~4x a 2-rank barrier, certainly not 8x (linear)
    assert b16 / b2 < 6.0
    assert b16 > b2
    # allreduce (reduce+bcast trees) also scales logarithmically
    a2 = results["allreduce"][0][1]
    a16 = results["allreduce"][-1][1]
    assert a16 / a2 < 8.0
    # larger communicators are never cheaper
    for series in results.values():
        times = [t for _, t in series]
        assert times == sorted(times)
