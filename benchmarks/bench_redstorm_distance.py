"""Distance sweep across Red Storm: latency vs hop count.

Section 1 states the XT3's requirements: "The one-way MPI latency
requirement between nearest neighbors is 2 us and is 5 us between the
two furthest nodes."  That budget only closes if the per-hop cost is
tens of nanoseconds — the software path must dominate.  This bench
sweeps a put across 1 .. diameter hops of the Red Storm arrangement
(27x16x24, torus only in z, diameter 53 hops) in both generic and
accelerated modes and checks:

* latency grows linearly in hops with the configured per-hop slope;
* the farthest-to-nearest delta stays within the 3 us the requirement
  implies (5 - 2 us), in every mode — topology is never the problem.
"""

import pytest

from repro.analysis import latency_at
from repro.hw.config import DEFAULT_CONFIG
from repro.netpipe import PortalsPutModule, run_series
from repro.sim import to_us

from .conftest import print_anchor, run_once

#: Red Storm's diameter: (27-1) + (16-1) + 24//2
DIAMETER = 53
HOP_STEPS = [1, 5, 13, 27, 40, 53]


def sweep(accelerated):
    out = []
    for hops in HOP_STEPS:
        series = run_series(
            PortalsPutModule(accelerated=accelerated),
            "pingpong",
            [8],
            hops=hops,
        )
        out.append((hops, latency_at(series, 8)))
    return out


@pytest.mark.benchmark(group="redstorm")
def test_redstorm_distance_sweep(benchmark, anchors):
    generic, accel = run_once(
        benchmark, lambda: (sweep(False), sweep(True))
    )
    print("\n=== Latency vs distance (Red Storm diameter = 53 hops) ===")
    print(f"{'hops':>6} | {'generic us':>11} | {'accel us':>9}")
    for (h, g), (_, a) in zip(generic, accel):
        print(f"{h:>6} | {g:>11.3f} | {a:>9.3f}")

    hop_cost_us = to_us(DEFAULT_CONFIG.hop_latency)
    near_g, far_g = generic[0][1], generic[-1][1]
    near_a, far_a = accel[0][1], accel[-1][1]
    print("\nAnchors:")
    print_anchor("XT3 nearest-neighbor requirement", 2.0, near_a, "us")
    print_anchor("XT3 farthest-pair requirement", 5.0, far_a, "us")
    print_anchor("farthest - nearest delta (generic)", 3.0, far_g - near_g, "us")
    print_anchor("modeled per-hop cost", 0, hop_cost_us * 1000, "ns")

    # linear in hops with the configured slope
    slope = (far_g - near_g) / (HOP_STEPS[-1] - HOP_STEPS[0])
    assert slope == pytest.approx(hop_cost_us, rel=0.05)
    # same slope in accelerated mode — the wire doesn't care about mode
    slope_a = (far_a - near_a) / (HOP_STEPS[-1] - HOP_STEPS[0])
    assert slope_a == pytest.approx(slope, rel=0.05)
    # the requirement's 3 us near-to-far budget holds with huge margin
    assert far_g - near_g < 3.0
    assert far_a - near_a < 3.0
