"""Ablation — resource-exhaustion policy: panic vs go-back-N.

Section 4.3: "we expect that production-level use will occasionally
trigger resource exhaustion.  We are currently working on a simple
go-back-n protocol to resolve resource exhaustion gracefully.  The
current approach is to panic the node, which results in application
failure."

We run a many-to-one incast against a receiver with deliberately tiny
pending pools: under PANIC the node dies; under GO_BACK_N every message
is eventually delivered, at a quantifiable throughput cost.
"""

import pytest

from repro.fw.firmware import ExhaustionPolicy
from repro.hw.config import SeaStarConfig
from repro.machine.builder import build_pair
from repro.portals import EventKind, MDOptions, NicPanic
from repro.sim import US, SimulationError, to_us

from .conftest import print_anchor, run_once

TINY = SeaStarConfig(
    generic_rx_pendings=2,
    generic_tx_pendings=32,
    num_generic_pendings=34,
    gobackn_backoff=5 * US,
)

MESSAGES = 40
NBYTES = 12
"""Header-inline messages: payload messages self-limit via RX-engine
backpressure (each waits for its deposit command before the next header
advances), but inline messages stream headers freely and genuinely
exhaust the pending pool — the scenario section 4.3 worries about."""


def incast(policy):
    """Burst MESSAGES puts at a stalled receiver; returns a result dict."""
    machine, na, nb = build_pair(TINY, policy=policy)
    pa, pb = na.create_process(), nb.create_process()
    out = {"delivered": 0}

    def receiver(proc):
        api = proc.api
        eq = yield from api.PtlEQAlloc(512)
        from repro.portals import PTL_NID_ANY, PTL_PID_ANY, ProcessId

        me = yield from api.PtlMEAttach(
            4, ProcessId(PTL_NID_ANY, PTL_PID_ANY), 0x1234
        )
        buf = proc.alloc(NBYTES)
        yield from api.PtlMDAttach(
            me,
            buf,
            options=MDOptions.OP_PUT | MDOptions.TRUNCATE | MDOptions.MANAGE_REMOTE,
            eq=eq,
        )
        yield proc.sim.timeout(50 * US)  # stall so pendings pile up
        for _ in range(MESSAGES):
            while True:
                ev = yield from api.PtlEQWait(eq)
                if ev.kind is EventKind.PUT_END:
                    break
            out["delivered"] += 1
        out["done_at"] = proc.sim.now
        return True

    def sender(proc, target):
        api = proc.api
        eq = yield from api.PtlEQAlloc(512)
        md = yield from api.PtlMDBind(proc.alloc(NBYTES), eq=eq)
        for _ in range(MESSAGES):
            yield from api.PtlPut(md, target, 4, 0x1234, length=NBYTES)
        ends = 0
        while ends < MESSAGES:
            ev = yield from api.PtlEQWait(eq)
            if ev.kind is EventKind.SEND_END:
                ends += 1
        return True

    hr = pb.spawn(receiver)
    hs = pa.spawn(sender, pb.id)
    try:
        machine.run()
        out["panicked"] = False
    except SimulationError as err:
        out["panicked"] = isinstance(err.__cause__, NicPanic)
    out["retransmits"] = na.firmware.counters["retransmits"]
    out["naks"] = nb.firmware.counters["naks_sent"]
    out["failures"] = na.firmware.counters["gobackn_failures"]
    return out


@pytest.mark.benchmark(group="ablation")
def test_ablation_exhaustion_recovery(benchmark, anchors):
    panic, gbn = run_once(
        benchmark,
        lambda: (incast(ExhaustionPolicy.PANIC), incast(ExhaustionPolicy.GO_BACK_N)),
    )
    print("\n=== Ablation: resource exhaustion (section 4.3) ===")
    print_anchor("PANIC: node panicked", 1.0, float(panic["panicked"]), "bool")
    print_anchor("PANIC: messages delivered", 0, float(panic["delivered"]), "msgs")
    print_anchor("GBN: messages delivered", float(MESSAGES), float(gbn["delivered"]), "msgs")
    print_anchor("GBN: NAKs sent", 0, float(gbn["naks"]), "")
    print_anchor("GBN: retransmissions", 0, float(gbn["retransmits"]), "")
    if "done_at" in gbn:
        print_anchor("GBN: completion time", 0, to_us(gbn["done_at"]), "us")

    # the paper's current behaviour: the node panics, application fails
    assert panic["panicked"]
    assert panic["delivered"] < MESSAGES
    # the in-progress protocol: everything delivered, no failure
    assert not gbn["panicked"]
    assert gbn["delivered"] == MESSAGES
    assert gbn["failures"] == 0
    assert gbn["naks"] > 0 and gbn["retransmits"] > 0
